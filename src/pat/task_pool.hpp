// pat::TaskPool — the executable form of the divide-and-conquer / task
// parallelism pattern: dynamically spawned tasks over per-worker deques
// with work stealing, layered on rt::ThreadPool without changing it.
//
// Mechanics (the invariants DESIGN.md §12 documents):
//
//  * Each pool worker that hosts a runner owns a deque slot. A task
//    submitted from inside a runner goes to the submitting worker's slot
//    and is popped LIFO (depth-first, cache-warm); idle runners steal from
//    other slots FIFO (breadth-first, the oldest — typically largest —
//    subtree), the classic Cilk-style discipline. Steals use try_lock and
//    move on, so a contended slot never blocks an idle runner.
//
//  * Submissions from threads outside the pool land in a shared inject
//    queue that runners drain between local pops and steals.
//
//  * The runners are plain long-lived rt::ThreadPool tasks, one per worker
//    they occupy; a TaskPool is single-use: spawn, wait(), destroy.
//
// Blocking contract: tasks must not wait on other TaskPool tasks (the pool
// has no suspension — a blocked runner is a lost worker). Express
// dependencies by submitting children *before* the parent returns; wait()
// observes quiescence only when the whole spawn tree has drained, because
// the pending count never transits zero while any parent is still running.
//
// Failure: task exceptions are captured; wait() drains the remaining tasks
// and rethrows the first one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "support/assert.hpp"

namespace ppd::pat {

namespace detail {
struct TaskCounters {
  obs::Counter& spawned;
  obs::Counter& injected;
  obs::Counter& executed_local;
  obs::Counter& stolen;
  /// Depth gauges: the live value tracks the last observed queue length,
  /// the gauge's high-water `max` is the watermark a scrape reports.
  obs::Gauge& deque_depth;
  obs::Gauge& inject_depth;
  static TaskCounters& instance() {
    static TaskCounters counters{
        obs::Registry::instance().counter("pat.task.spawned"),
        obs::Registry::instance().counter("pat.task.injected"),
        obs::Registry::instance().counter("pat.task.executed_local"),
        obs::Registry::instance().counter("pat.task.stolen"),
        obs::Registry::instance().gauge("pat.task.deque_depth"),
        obs::Registry::instance().gauge("pat.task.inject_depth")};
    return counters;
  }
};
}  // namespace detail

/// Work-stealing task executor scoped to one spawn/wait episode.
class TaskPool {
 public:
  /// Starts min(workers, pool.thread_count()) runners (workers == 0 means
  /// all of them). The runners occupy their pool workers until wait().
  explicit TaskPool(rt::ThreadPool& pool, std::size_t workers = 0)
      : pool_(pool),
        slots_(pool.thread_count()),
        group_(pool) {
    const std::size_t wanted = workers == 0 ? pool_.thread_count() : workers;
    runner_count_ = std::min(wanted, pool_.thread_count());
    PPD_ASSERT_MSG(!pool_.owns_current_thread(),
                   "TaskPool must be created from outside its thread pool");
    for (std::size_t r = 0; r < runner_count_; ++r) {
      group_.run([this] { runner_loop(); });
    }
  }

  ~TaskPool() { finish(); }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Spawns a task. Callable from anywhere: inside a running task it pushes
  /// onto the calling worker's own deque (popped LIFO, stealable FIFO);
  /// from any other thread it goes through the inject queue.
  void submit(std::function<void()> fn) {
    detail::TaskCounters::instance().spawned.add(1);
    // Count the task *before* publishing it: once it is visible in a deque,
    // a runner may pop, execute, and decrement it immediately, and an
    // uncounted in-flight task would let pending_ transit zero — premature
    // quiescence. The epoch bump comes *after* publication for the mirror
    // reason: a runner woken early would find nothing and sleep through
    // the task's arrival.
    {
      std::lock_guard lock(mutex_);
      PPD_ASSERT_MSG(!finished_, "submit on a finished TaskPool");
      ++pending_;
    }
    const std::size_t slot = pool_.owns_current_thread()
                                 ? rt::ThreadPool::current_worker_index()
                                 : rt::ThreadPool::kNotAWorker;
    if (slot != rt::ThreadPool::kNotAWorker) {
      std::lock_guard slot_lock(slots_[slot].mutex);
      slots_[slot].tasks.push_back(std::move(fn));
      detail::TaskCounters::instance().deque_depth.set(
          static_cast<std::int64_t>(slots_[slot].tasks.size()));
    } else {
      detail::TaskCounters::instance().injected.add(1);
      std::lock_guard inject_lock(inject_mutex_);
      inject_.push_back(std::move(fn));
      detail::TaskCounters::instance().inject_depth.set(
          static_cast<std::int64_t>(inject_.size()));
    }
    {
      std::lock_guard lock(mutex_);
      ++epoch_;
    }
    cv_.notify_all();
  }

  /// Blocks until every spawned task (including transitively spawned
  /// children) has finished, releases the runners back to the pool, and
  /// rethrows the first captured task exception. Call once, from outside
  /// the pool.
  void wait() {
    finish();
    std::exception_ptr err;
    {
      std::lock_guard lock(mutex_);
      err = first_error_;
      first_error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

  [[nodiscard]] std::size_t runner_count() const { return runner_count_; }

 private:
  using Task = std::function<void()>;

  struct Slot {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void finish() {
    {
      std::lock_guard lock(mutex_);
      if (finished_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return pending_ == 0; });
      finished_ = true;
    }
    cv_.notify_all();  // runners observe stopping_ && pending_ == 0
    group_.wait();
  }

  [[nodiscard]] bool done_locked() const { return stopping_ && pending_ == 0; }

  void runner_loop() {
    const std::size_t my_slot = rt::ThreadPool::current_worker_index();
    PPD_ASSERT(my_slot < slots_.size());
    for (;;) {
      std::uint64_t epoch;
      {
        std::lock_guard lock(mutex_);
        if (done_locked()) return;
        epoch = epoch_;
      }
      if (std::optional<Task> task = find_task(my_slot)) {
        execute(std::move(*task));
        continue;
      }
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return epoch_ != epoch || done_locked(); });
    }
  }

  std::optional<Task> find_task(std::size_t my_slot) {
    // 1. Own deque, newest first (LIFO).
    {
      std::lock_guard lock(slots_[my_slot].mutex);
      if (!slots_[my_slot].tasks.empty()) {
        Task task = std::move(slots_[my_slot].tasks.back());
        slots_[my_slot].tasks.pop_back();
        detail::TaskCounters::instance().executed_local.add(1);
        return task;
      }
    }
    // 2. The inject queue, oldest first.
    {
      std::lock_guard lock(inject_mutex_);
      if (!inject_.empty()) {
        Task task = std::move(inject_.front());
        inject_.pop_front();
        return task;
      }
    }
    // 3. Steal: scan the other slots, oldest first, skipping contended ones.
    for (std::size_t offset = 1; offset < slots_.size(); ++offset) {
      Slot& victim = slots_[(my_slot + offset) % slots_.size()];
      std::unique_lock lock(victim.mutex, std::try_to_lock);
      if (!lock.owns_lock() || victim.tasks.empty()) continue;
      Task task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      detail::TaskCounters::instance().stolen.add(1);
      return task;
    }
    return std::nullopt;
  }

  void execute(Task task) {
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard lock(mutex_);
    --pending_;
    if (pending_ == 0) cv_.notify_all();
  }

  rt::ThreadPool& pool_;
  std::vector<Slot> slots_;
  rt::TaskGroup group_;
  std::size_t runner_count_ = 0;

  std::mutex inject_mutex_;
  std::deque<Task> inject_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  bool finished_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ppd::pat
