// pat::parallel_for / pat::parallel_for_reduce — the executable form of the
// do-all, fusion, geometric-decomposition, and reduction patterns.
//
// Unlike the minimal rt::parallel_for (one static chunk per worker), these
// run over an explicit *chunk plan* claimed dynamically by the workers:
//
//  * Static   — `workers` equal ranges, the classic SPMD split;
//  * Guided   — decreasing chunk sizes (remaining / 2·workers, floored at
//               min_chunk), so stragglers at the tail cost little when the
//               per-iteration cost is irregular.
//
// Determinism contract: the chunk *boundaries* are computed up front from
// (begin, end, workers, chunking) alone, and the reduction combines the
// per-chunk partials in chunk order on the calling thread. Which worker
// executes which chunk varies run to run; the combine order never does, so
// even non-associative-in-practice folds (floating-point sums) produce
// bit-identical results at every job count. The execution-verification
// suite (ctest -L execverify) leans on exactly this property.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "support/assert.hpp"

namespace ppd::pat {

/// How parallel_for / parallel_for_reduce carve [begin, end) into chunks.
enum class Chunking { Static, Guided };

/// Tuning for the chunk plan.
struct ForOptions {
  Chunking chunking = Chunking::Static;
  /// Guided floor: no chunk smaller than this (also the tail granularity).
  std::uint64_t min_chunk = 1;
};

/// Half-open iteration range [lo, hi).
struct ChunkRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// The deterministic chunk plan for [begin, end): covers the range exactly,
/// in order, without overlap. Exposed for tests and for the codegen
/// backend's generated comments.
[[nodiscard]] inline std::vector<ChunkRange> plan_chunks(std::uint64_t begin,
                                                         std::uint64_t end,
                                                         std::size_t workers,
                                                         const ForOptions& options = {}) {
  std::vector<ChunkRange> plan;
  if (begin >= end) return plan;
  PPD_ASSERT(workers > 0);
  const std::uint64_t n = end - begin;
  const std::uint64_t min_chunk = options.min_chunk == 0 ? 1 : options.min_chunk;
  if (options.chunking == Chunking::Static) {
    const std::uint64_t chunks =
        std::min<std::uint64_t>(n, static_cast<std::uint64_t>(workers));
    plan.reserve(static_cast<std::size_t>(chunks));
    for (std::uint64_t c = 0; c < chunks; ++c) {
      plan.push_back({begin + n * c / chunks, begin + n * (c + 1) / chunks});
    }
    return plan;
  }
  // Guided: each next chunk takes remaining / (2 * workers), floored.
  std::uint64_t lo = begin;
  while (lo < end) {
    const std::uint64_t remaining = end - lo;
    std::uint64_t size = remaining / (2 * static_cast<std::uint64_t>(workers));
    if (size < min_chunk) size = min_chunk;
    if (size > remaining) size = remaining;
    plan.push_back({lo, lo + size});
    lo += size;
  }
  return plan;
}

namespace detail {

/// Registry references resolved once per process (see obs::Registry note on
/// stable references).
struct ForCounters {
  obs::Counter& invocations;
  obs::Counter& chunks;
  static ForCounters& instance() {
    static ForCounters counters{
        obs::Registry::instance().counter("pat.pfr.invocations"),
        obs::Registry::instance().counter("pat.pfr.chunks")};
    return counters;
  }
};

/// Runs the plan: `workers` pool tasks claim chunk indices from a shared
/// atomic cursor and call run_chunk(chunk_index) for each.
template <typename RunChunk>
void execute_plan(rt::ThreadPool& pool, std::size_t chunk_count, std::size_t workers,
                  RunChunk&& run_chunk) {
  std::atomic<std::size_t> cursor{0};
  rt::TaskGroup group(pool);
  const std::size_t tasks = std::min(workers, chunk_count);
  for (std::size_t w = 0; w < tasks; ++w) {
    group.run([&cursor, chunk_count, &run_chunk] {
      for (;;) {
        const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunk_count) return;
        run_chunk(c);
      }
    });
  }
  group.wait();
}

}  // namespace detail

/// Do-all over [begin, end): body(i) for every i, chunk-claimed by the
/// pool's workers. Blocks until every iteration finished; body exceptions
/// propagate (first one rethrown).
template <typename Body>
void parallel_for(rt::ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  Body&& body, const ForOptions& options = {}) {
  if (begin >= end) return;
  PPD_OBS_SPAN("pat.parallel_for");
  const std::size_t workers = pool.thread_count();
  const std::vector<ChunkRange> plan = plan_chunks(begin, end, workers, options);
  detail::ForCounters::instance().invocations.add(1);
  detail::ForCounters::instance().chunks.add(plan.size());
  detail::execute_plan(pool, plan.size(), workers, [&](std::size_t c) {
    for (std::uint64_t i = plan[c].lo; i < plan[c].hi; ++i) body(i);
  });
}

/// Reduction over [begin, end): every chunk folds its range with
/// fold(acc, i) starting from `identity`; the per-chunk partials combine in
/// chunk order with combine(acc, partial) on the calling thread. The result
/// is bit-identical at every job count (see the determinism contract above).
template <typename T, typename Fold, typename Combine>
[[nodiscard]] T parallel_for_reduce(rt::ThreadPool& pool, std::uint64_t begin,
                                    std::uint64_t end, T identity, Fold&& fold,
                                    Combine&& combine, const ForOptions& options = {}) {
  if (begin >= end) return identity;
  PPD_OBS_SPAN("pat.parallel_for_reduce");
  const std::size_t workers = pool.thread_count();
  const std::vector<ChunkRange> plan = plan_chunks(begin, end, workers, options);
  detail::ForCounters::instance().invocations.add(1);
  detail::ForCounters::instance().chunks.add(plan.size());
  std::vector<T> partial(plan.size(), identity);
  detail::execute_plan(pool, plan.size(), workers, [&](std::size_t c) {
    T acc = identity;
    for (std::uint64_t i = plan[c].lo; i < plan[c].hi; ++i) {
      acc = fold(std::move(acc), i);
    }
    partial[c] = std::move(acc);
  });
  T acc = std::move(identity);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace ppd::pat
