// ppd::pat — executable pattern runtime (umbrella header).
//
// The analysis pipeline detects patterns; this library *runs* them. Three
// composable primitives over rt::ThreadPool, one per Algorithm Structure
// branch the detector reports:
//
//   parallel_for_reduce.hpp  do-all / geometric / reduction  (by-data)
//   pipeline.hpp             pipeline + farm stages          (by-flow)
//   task_pool.hpp            task / divide-and-conquer       (by-task)
//
// All three are deterministic at every worker count (see each header's
// contract), which is what lets the execution-verification suite assert
// parallel == sequential bit-for-bit across jobs {1,2,4,8}.
#pragma once

#include "pat/parallel_for_reduce.hpp"
#include "pat/pipeline.hpp"
#include "pat/task_pool.hpp"
