// pat::Pipeline — the executable form of the multi-loop pipeline pattern:
// an ordered stream of items flowing through serial stages and replicated
// *farm* stages, connected by bounded queues with back-pressure.
//
// Semantics (the invariants DESIGN.md §12 documents):
//
//  * Ordering. The sink observes items in exactly the order the source
//    produced them, farms included: a farm dispatches round-robin across
//    its replicas and the downstream side collects round-robin in the same
//    order, so replica r carries precisely the subsequence i ≡ r (mod k)
//    and the merge is a deterministic interleave — no reorder buffer, no
//    sequence numbers, bit-identical output at every replica count.
//
//  * Back-pressure. Every link is a BoundedQueue of fixed capacity; a
//    producer that outruns its consumer blocks in push() (counted in
//    pat.pipeline.push_waits). Memory in flight is bounded by
//    capacity × queues regardless of stream length.
//
//  * Placement. The source and every stage replica run as long-lived tasks
//    on the rt::ThreadPool; the sink runs on the calling thread. When the
//    pool has fewer workers than the pipeline needs actors, run() degrades
//    to a sequential in-order execution of the same stages on the calling
//    thread (pat.pipeline.sequential_fallbacks) — same results, no overlap,
//    never a deadlock from actors waiting on unscheduled actors.
//
//  * Failure. A throwing stage closes every queue, which unwinds all
//    actors; run() rethrows the first exception after joining them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "support/assert.hpp"

namespace ppd::pat {

namespace detail {
struct PipelineCounters {
  obs::Counter& runs;
  obs::Counter& items;
  obs::Counter& push_waits;
  obs::Counter& pop_waits;
  obs::Counter& sequential_fallbacks;
  /// Link-queue depth after each push; the gauge's high-water `max` is the
  /// watermark (how close to capacity the pipeline's back-pressure ran).
  obs::Gauge& queue_depth;
  static PipelineCounters& instance() {
    static PipelineCounters counters{
        obs::Registry::instance().counter("pat.pipeline.runs"),
        obs::Registry::instance().counter("pat.pipeline.items"),
        obs::Registry::instance().counter("pat.pipeline.push_waits"),
        obs::Registry::instance().counter("pat.pipeline.pop_waits"),
        obs::Registry::instance().counter("pat.pipeline.sequential_fallbacks"),
        obs::Registry::instance().gauge("pat.pipeline.queue_depth")};
    return counters;
  }
};
}  // namespace detail

/// Blocking MPSC-safe bounded queue (in the pipeline each end is touched by
/// one actor, but the implementation is safe for any number of threads).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is full (back-pressure). Returns false — and
  /// drops the item — once the queue is closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    if (!(closed_ || items_.size() < capacity_)) {
      detail::PipelineCounters::instance().push_waits.add(1);
      not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    detail::PipelineCounters::instance().queue_depth.set(
        static_cast<std::int64_t>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty; std::nullopt once closed *and*
  /// drained (close never discards queued items).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty() && !closed_) {
      detail::PipelineCounters::instance().pop_waits.add(1);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wakes every blocked producer and consumer; push() fails from now on,
  /// pop() drains the remaining items then reports end of stream.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// An ordered pipeline over items of type T. Build with stage()/farm(),
/// execute with run(); a Pipeline object is single-use.
template <typename T>
class Pipeline {
 public:
  struct Options {
    /// Capacity of each bounded queue (per farm replica link).
    std::size_t queue_capacity = 64;
  };

  explicit Pipeline(rt::ThreadPool& pool, Options options = {})
      : pool_(pool), options_(options) {}

  /// Appends a serial, order-preserving transformation stage.
  Pipeline& stage(std::function<T(T)> fn) {
    stages_.push_back({std::move(fn), 1});
    return *this;
  }

  /// Appends a farm: `replicas` copies of fn over the round-robin-split
  /// stream. Two adjacent farms are not supported (insert a serial stage
  /// between them); replicas == 1 is exactly stage().
  Pipeline& farm(std::function<T(T)> fn, std::size_t replicas) {
    PPD_ASSERT(replicas > 0);
    PPD_ASSERT_MSG(stages_.empty() || stages_.back().replicas == 1 || replicas == 1,
                   "adjacent farm stages are not supported");
    stages_.push_back({std::move(fn), replicas});
    return *this;
  }

  /// Actors run() will place on the pool: the source plus every replica.
  [[nodiscard]] std::size_t pool_actors() const {
    std::size_t actors = 1;  // the source
    for (const StageSpec& s : stages_) actors += s.replicas;
    return actors;
  }

  /// Drives source() until it returns std::nullopt, streams every item
  /// through the stages, and hands them to sink in source order.
  void run(std::function<std::optional<T>()> source, std::function<void(T)> sink) {
    PPD_OBS_SPAN("pat.pipeline.run");
    detail::PipelineCounters::instance().runs.add(1);
    if (pool_.thread_count() < pool_actors()) {
      run_sequential(source, sink);
      return;
    }

    // One channel per link; channel i feeds stage i, the last channel feeds
    // the sink. A channel has one queue per *reader* when the reader is a
    // farm, else one queue per *writer* (the farm's replicas each own their
    // output queue and the downstream reader merges round-robin).
    std::vector<Channel> channels(stages_.size() + 1);
    for (std::size_t i = 0; i < channels.size(); ++i) {
      const std::size_t writers = i == 0 ? 1 : stages_[i - 1].replicas;
      const std::size_t readers = i < stages_.size() ? stages_[i].replicas : 1;
      channels[i].queues.reserve(std::max(writers, readers));
      for (std::size_t q = 0; q < std::max(writers, readers); ++q) {
        channels[i].queues.push_back(
            std::make_unique<BoundedQueue<T>>(options_.queue_capacity));
      }
    }
    auto close_all = [&channels] {
      for (Channel& c : channels) {
        for (auto& q : c.queues) q->close();
      }
    };

    rt::TaskGroup group(pool_);
    // The source: round-robin into channel 0.
    group.run([&] {
      try {
        Writer out(channels.front());
        while (std::optional<T> item = source()) {
          if (!out.write(std::move(*item))) return;  // aborted downstream
        }
        out.finish();
      } catch (...) {
        close_all();
        throw;
      }
    });
    // Every stage replica: replica r of stage i reads queue r of channel i
    // when the stage is a farm (its own input lane), else merges the
    // channel round-robin; output mirrors that on channel i+1.
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      const StageSpec& spec = stages_[i];
      for (std::size_t r = 0; r < spec.replicas; ++r) {
        group.run([&, i, r] {
          try {
            Channel& in = channels[i];
            Channel& out_channel = channels[i + 1];
            const bool farm_lane = stages_[i].replicas > 1;
            Reader input(in, farm_lane ? r : 0, farm_lane);
            Writer output(out_channel, farm_lane ? r : 0, farm_lane);
            while (std::optional<T> item = input.read()) {
              if (!output.write(stages_[i].fn(std::move(*item)))) return;
            }
            output.finish();
          } catch (...) {
            close_all();
            throw;
          }
        });
      }
    }
    // The sink runs here, on the calling thread.
    try {
      Reader final_input(channels.back(), 0, /*single_lane=*/false);
      while (std::optional<T> item = final_input.read()) {
        detail::PipelineCounters::instance().items.add(1);
        sink(std::move(*item));
      }
    } catch (...) {
      close_all();
      group.wait();
      throw;
    }
    group.wait();  // rethrows the first stage/source exception
  }

 private:
  struct StageSpec {
    std::function<T(T)> fn;
    std::size_t replicas = 1;
  };

  struct Channel {
    std::vector<std::unique_ptr<BoundedQueue<T>>> queues;
  };

  /// Writes an ordered stream into a channel: a farm replica owns one fixed
  /// lane; every other writer round-robins across all lanes.
  class Writer {
   public:
    explicit Writer(Channel& channel, std::size_t lane = 0, bool single_lane = false)
        : channel_(channel), cursor_(lane), single_lane_(single_lane) {}

    bool write(T item) {
      const bool ok = channel_.queues[cursor_]->push(std::move(item));
      if (!single_lane_) cursor_ = (cursor_ + 1) % channel_.queues.size();
      return ok;
    }

    /// End of stream: closes the lanes this writer owns.
    void finish() {
      if (single_lane_) {
        channel_.queues[cursor_]->close();
      } else {
        for (auto& q : channel_.queues) q->close();
      }
    }

   private:
    Channel& channel_;
    std::size_t cursor_;
    const bool single_lane_;
  };

  /// Reads an ordered stream out of a channel; mirror of Writer.
  class Reader {
   public:
    explicit Reader(Channel& channel, std::size_t lane, bool single_lane)
        : channel_(channel), cursor_(lane), single_lane_(single_lane) {}

    std::optional<T> read() {
      std::optional<T> item = channel_.queues[cursor_]->pop();
      if (!single_lane_ && item.has_value()) {
        cursor_ = (cursor_ + 1) % channel_.queues.size();
      }
      return item;
    }

   private:
    Channel& channel_;
    std::size_t cursor_;
    const bool single_lane_;
  };

  void run_sequential(const std::function<std::optional<T>()>& source,
                      const std::function<void(T)>& sink) {
    detail::PipelineCounters::instance().sequential_fallbacks.add(1);
    while (std::optional<T> item = source()) {
      T value = std::move(*item);
      for (const StageSpec& s : stages_) value = s.fn(std::move(value));
      detail::PipelineCounters::instance().items.add(1);
      sink(std::move(value));
    }
  }

  rt::ThreadPool& pool_;
  Options options_;
  std::vector<StageSpec> stages_;
};

}  // namespace ppd::pat
