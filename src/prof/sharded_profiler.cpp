#include "prof/sharded_profiler.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"

namespace ppd::prof {

ShardedProfiler::ShardedProfiler(Options options)
    : options_(options), shadow_(options.shards) {
  if (options_.block_records == 0) options_.block_records = 1;
  const std::size_t n = shadow_.stripe_count();
  fill_.resize(n);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<StripeQueue>());
  }
  obs::Registry::instance().gauge("prof.shards").set(static_cast<std::int64_t>(n));
}

ShardedProfiler::~ShardedProfiler() {
  // Workers capture `this`; never destroy with blocks in flight.
  drain();
}

void ShardedProfiler::on_region_enter(const trace::RegionInfo& region) {
  tally_.on_enter(region);
}

void ShardedProfiler::on_iteration(const trace::RegionInfo& loop,
                                   std::uint64_t iteration) {
  tally_.on_iteration(loop, iteration);
}

void ShardedProfiler::on_access(const trace::AccessEvent& access) {
  if (!profilable(access)) {
    ++ignored_events_;
    return;
  }
  const std::size_t stripe = shadow_.stripe_of(access.addr);
  if (options_.pool == nullptr) {
    shadow_.stripe(stripe).process(capture(access));
    return;
  }
  std::vector<CapturedAccess>& fill = fill_[stripe];
  fill.push_back(capture(access));
  if (fill.size() >= options_.block_records) flush_stripe(stripe);
}

void ShardedProfiler::on_trace_end() { drain(); }

void ShardedProfiler::flush_stripe(std::size_t stripe) {
  if (fill_[stripe].empty()) return;
  std::vector<CapturedAccess> block;
  block.swap(fill_[stripe]);

  // Count the block as pending *before* it becomes visible on the queue: an
  // already-scheduled worker may pop and finish it the moment it is pushed,
  // and its decrement must not precede this increment (pending_blocks_ is
  // unsigned; an early decrement would wrap and deadlock drain()).
  {
    std::lock_guard lock(done_mutex_);
    ++pending_blocks_;
  }
  StripeQueue& queue = *queues_[stripe];
  bool schedule = false;
  {
    std::lock_guard lock(queue.mutex);
    queue.blocks.push_back(std::move(block));
    if (!queue.scheduled) {
      queue.scheduled = true;
      schedule = true;
    }
  }
  obs::Registry::instance().counter("prof.shard.blocks").add(1);
  if (!schedule) return;
  try {
    options_.pool->submit([this, stripe] { drain_stripe(stripe); });
  } catch (const std::exception&) {
    // Pool already shut down: process inline. The stripe's FIFO still sees
    // its blocks in dispatch order, so the result is unchanged.
    drain_stripe(stripe);
  }
}

void ShardedProfiler::drain_stripe(std::size_t stripe) {
  StripeQueue& queue = *queues_[stripe];
  StripeState& state = shadow_.stripe(stripe);
  for (;;) {
    std::vector<CapturedAccess> block;
    {
      std::lock_guard lock(queue.mutex);
      if (queue.blocks.empty()) {
        queue.scheduled = false;
        return;
      }
      block = std::move(queue.blocks.front());
      queue.blocks.pop_front();
    }
    bool failed = false;
    {
      PPD_OBS_SPAN("prof.shard");
      try {
        for (const CapturedAccess& access : block) state.process(access);
      } catch (...) {
        // Keep draining so pending_blocks_ reaches zero (a stuck drain()
        // would deadlock the dispatch thread); take() reports the failure.
        failed = true;
      }
    }
    // Decide whether to keep the stripe *before* publishing the block as
    // done: the moment pending_blocks_ reaches zero, drain() may return and
    // the profiler may be destroyed, so after its final decrement this task
    // must not touch the queue, the stripe, or any other member.
    bool more;
    {
      std::lock_guard lock(queue.mutex);
      more = !queue.blocks.empty();
      if (!more) queue.scheduled = false;
    }
    {
      std::lock_guard lock(done_mutex_);
      if (failed) ++worker_errors_;
      if (--pending_blocks_ == 0) done_cv_.notify_all();
    }
    if (!more) return;
  }
}

void ShardedProfiler::drain() {
  if (options_.pool == nullptr) return;
  PPD_OBS_SPAN("prof.drain");
  for (std::size_t i = 0; i < shadow_.stripe_count(); ++i) flush_stripe(i);
  std::unique_lock lock(done_mutex_);
  done_cv_.wait(lock, [this] { return pending_blocks_ == 0; });
}

Profile ShardedProfiler::take() {
  drain();
  {
    std::lock_guard lock(done_mutex_);
    if (worker_errors_ != 0) {
      throw std::runtime_error("sharded profiling failed on " +
                               std::to_string(worker_errors_) + " block(s)");
    }
  }
  // Shard balance: how evenly the striping spread the access stream.
  obs::Histogram& balance =
      obs::Registry::instance().histogram("prof.shard.accesses");
  std::uint64_t total = 0;
  for (const StripeState& stripe : shadow_.stripes()) {
    if (stripe.accesses == 0) continue;
    balance.record(stripe.accesses);
    total += stripe.accesses;
  }
  obs::Registry::instance().gauge("prof.sharded.accesses").set(
      static_cast<std::int64_t>(total));
  return merge_stripes(shadow_.stripes(), tally_.loops, options_.pool);
}

}  // namespace ppd::prof
