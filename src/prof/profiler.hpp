// Dynamic data-dependence profiler (serial reference front-end).
//
// Reproduces DiscoPoP's second analysis (the efficient data-dependence
// profiler, [14] in the paper): it observes the instrumented event stream,
// keeps per-address last-writer/last-reader records in shadow memory, and
// emits deduplicated static dependences classified as loop-independent or
// loop-carried. It also implements the two special-purpose recorders the
// paper's detectors need:
//
//  * the multi-loop-pipeline iteration-pair filter (§III-A): per address,
//    the *last* write iteration in loop x paired with the *first* read
//    iteration in loop y;
//  * the reduction access-line summary (Algorithm 3): per loop and variable,
//    the source lines of accesses participating in inter-iteration
//    dependences.
//
// The per-access semantics live in prof/sharded_shadow.hpp (StripeState);
// this front-end processes every access inline through exactly one stripe
// and finalizes through the same merge_stripes() reduction the concurrent
// ShardedProfiler uses. The unit suite pins this serial path, and the
// sharded path is bit-identical to it by construction.
#pragma once

#include <unordered_map>

#include "prof/dependence.hpp"
#include "prof/sharded_shadow.hpp"
#include "trace/events.hpp"

namespace ppd::prof {

/// Online profiler; subscribe to a TraceContext, run the instrumented
/// kernel, then call take() (or keep profiling further runs with different
/// inputs first — results merge, as the paper merges profiles of multiple
/// representative inputs).
class DependenceProfiler final : public trace::EventSink {
 public:
  DependenceProfiler() = default;

  void on_region_enter(const trace::RegionInfo& region) override;
  void on_region_exit(const trace::RegionInfo& region) override;
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const trace::AccessEvent& access) override;
  void on_trace_end() override;

  /// Finalizes and returns the merged profile. The profiler can keep being
  /// used afterwards; taking again returns the further-merged profile.
  [[nodiscard]] Profile take() const;

  /// Number of distinct static dependences recorded so far.
  [[nodiscard]] std::size_t dependence_count() const { return state_.deps.size(); }

  /// Shadow-memory footprint (for the profiler microbenchmarks).
  [[nodiscard]] std::size_t shadow_bytes() const { return state_.shadow.touched_bytes(); }

  /// Accesses ignored because they violated profiler limits (undefined
  /// variable id, or loop nesting deeper than InlineLoopStack::kMaxDepth).
  /// Non-zero means the profile is degraded — report it, don't trust it
  /// blindly.
  [[nodiscard]] std::uint64_t ignored_events() const { return ignored_events_; }

 private:
  StripeState state_;
  LoopTally tally_;
  std::uint64_t ignored_events_ = 0;
};

}  // namespace ppd::prof
