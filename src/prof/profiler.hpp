// Dynamic data-dependence profiler.
//
// Reproduces DiscoPoP's second analysis (the efficient data-dependence
// profiler, [14] in the paper): it observes the instrumented event stream,
// keeps per-address last-writer/last-reader records in shadow memory, and
// emits deduplicated static dependences classified as loop-independent or
// loop-carried. It also implements the two special-purpose recorders the
// paper's detectors need:
//
//  * the multi-loop-pipeline iteration-pair filter (§III-A): per address,
//    the *last* write iteration in loop x paired with the *first* read
//    iteration in loop y;
//  * the reduction access-line summary (Algorithm 3): per loop and variable,
//    the source lines of accesses participating in inter-iteration
//    dependences.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "mem/access_record.hpp"
#include "mem/shadow.hpp"
#include "prof/dependence.hpp"
#include "trace/events.hpp"

namespace ppd::prof {

/// Online profiler; subscribe to a TraceContext, run the instrumented
/// kernel, then call take() (or keep profiling further runs with different
/// inputs first — results merge, as the paper merges profiles of multiple
/// representative inputs).
class DependenceProfiler final : public trace::EventSink {
 public:
  DependenceProfiler() = default;

  void on_region_enter(const trace::RegionInfo& region) override;
  void on_region_exit(const trace::RegionInfo& region) override;
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const trace::AccessEvent& access) override;
  void on_trace_end() override;

  /// Finalizes and returns the merged profile. The profiler can keep being
  /// used afterwards; taking again returns the further-merged profile.
  [[nodiscard]] Profile take() const;

  /// Number of distinct static dependences recorded so far.
  [[nodiscard]] std::size_t dependence_count() const { return deps_.size(); }

  /// Shadow-memory footprint (for the profiler microbenchmarks).
  [[nodiscard]] std::size_t shadow_bytes() const { return shadow_.touched_bytes(); }

  /// Accesses ignored because they violated profiler limits (undefined
  /// variable id, or loop nesting deeper than InlineLoopStack::kMaxDepth).
  /// Non-zero means the profile is degraded — report it, don't trust it
  /// blindly.
  [[nodiscard]] std::uint64_t ignored_events() const { return ignored_events_; }

 private:
  struct DepKey {
    DepKind kind;
    VarId var;
    SourceLine src_line;
    SourceLine dst_line;
    StatementId src_stmt;
    StatementId dst_stmt;
    RegionId carrier;

    friend bool operator==(const DepKey&, const DepKey&) = default;
  };
  struct DepKeyHash {
    std::size_t operator()(const DepKey& k) const noexcept;
  };

  void record_dependence(DepKind kind, VarId var, Address addr,
                         const mem::AccessRecord& src, const mem::AccessRecord& dst);

  /// Finds the outermost common loop with differing iterations; also reports
  /// the first position after the common (id+iteration)-equal prefix, which
  /// drives cross-loop pair detection.
  struct LoopRelation {
    RegionId carrier;                 ///< invalid if loop-independent
    std::uint64_t distance = 0;       ///< |iteration delta| at the carrier
    RegionId src_branch;              ///< src-side loop right after the common prefix
    RegionId dst_branch;              ///< dst-side loop right after the common prefix
  };
  [[nodiscard]] static LoopRelation relate_loops(const mem::InlineLoopStack& src,
                                                 const mem::InlineLoopStack& dst);

  void maybe_record_pipeline_pair(const trace::AccessEvent& read,
                                  const mem::AccessRecord& write);
  void note_carried_access(RegionId loop, VarId var, SourceLine write_line,
                           SourceLine read_line, Address addr, trace::UpdateOp op);

  mem::ShadowMemory<mem::ShadowCell> shadow_;
  std::unordered_map<RegionId, std::unordered_set<Address>> loop_footprints_;
  std::unordered_map<DepKey, Dependence, DepKeyHash> deps_;
  std::unordered_map<RegionId, LoopInfo> loops_;
  std::unordered_map<RegionId, std::unordered_map<VarId, CarriedVarAccess>> carried_vars_;

  struct PairData {
    std::vector<IterPair> pairs;
    std::unordered_set<Address> recorded_addresses;
  };
  std::unordered_map<LoopPairKey, PairData, LoopPairKeyHash> loop_pairs_;
  std::uint64_t ignored_events_ = 0;
};

}  // namespace ppd::prof
