// Address-striped dependence-profiling core.
//
// BENCH_ingest.json showed ingest throughput saturating once the
// chunk-parallel reader funnels every event through one serial dispatch
// thread into the profiler's shadow memory. The fix exploits the key
// property of dependence profiling: whether two accesses form a RAW/WAR/WAW
// dependence depends *only* on the program-ordered access sequence of their
// common address. Partitioning the address space into power-of-two stripes
// therefore partitions the profiling work exactly — each stripe sees the
// full program-ordered subsequence of its own addresses and never needs
// another stripe's state.
//
// This header holds the shared core both profiler front-ends run through:
//
//  * StripeState::process() — the per-access transition function (shadow
//    update, dependence classification, pipeline-pair and reduction
//    recorders). The serial DependenceProfiler is exactly one StripeState;
//    the concurrent ShardedProfiler is N of them. One implementation means
//    the serial path — pinned by the existing unit suite — *is* the
//    semantics of the sharded path.
//
//  * merge_stripes() — the deterministic reduction from per-stripe state to
//    a Profile. Determinism argument (DESIGN.md §10): per-key combination
//    uses only commutative/associative operators (count sums, distance
//    min/max, cross-activation AND, earliest-occurrence site selection via
//    min first_seq), every container in the result is rebuilt in a canonical
//    sorted order, and pipeline iteration pairs carry the reading access's
//    sequence number so the merged list reproduces program order no matter
//    which stripe recorded which pair. The merged Profile is a pure function
//    of the event stream — independent of stripe count, worker count, and
//    chunk completion order — and for one stripe it reduces to the serial
//    profiler's output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/access_record.hpp"
#include "mem/shadow.hpp"
#include "prof/dependence.hpp"
#include "trace/events.hpp"

namespace ppd::rt {
class ThreadPool;
}

namespace ppd::prof {

/// Identity of one deduplicated static dependence. The enclosing regions of
/// the two sites are *not* part of the key: the first dynamic occurrence
/// defines them (see MergedDep::first_seq).
struct DepKey {
  DepKind kind;
  VarId var;
  SourceLine src_line;
  SourceLine dst_line;
  StatementId src_stmt;
  StatementId dst_stmt;
  RegionId carrier;

  friend bool operator==(const DepKey&, const DepKey&) = default;
};

struct DepKeyHash {
  std::size_t operator()(const DepKey& k) const noexcept;
};

/// A materialized access event: everything process() needs, with the loop
/// stack copied out of the dispatch thread's transient span. Captured on the
/// dispatch thread, processed on whichever worker owns the stripe.
struct CapturedAccess {
  trace::AccessKind kind = trace::AccessKind::Read;
  Address addr = 0;
  VarId var;
  mem::AccessRecord record;
};

/// True when the profiler accepts the event; mirrors the corrupt-stream
/// guard both front-ends apply before capture (invalid events are tallied
/// as ignored, not profiled).
[[nodiscard]] inline bool profilable(const trace::AccessEvent& access) {
  return access.var.valid() &&
         access.loop_stack.size() <= mem::InlineLoopStack::kMaxDepth;
}

/// Materializes an event for deferred processing. Call only when
/// profilable(access).
[[nodiscard]] inline CapturedAccess capture(const trace::AccessEvent& access) {
  return CapturedAccess{access.kind, access.addr, access.var,
                        mem::AccessRecord::from_event(access)};
}

/// Loop bookkeeping driven by region/iteration events. Lives on the dispatch
/// thread in both front-ends (these events are global, not per-address).
struct LoopTally {
  std::unordered_map<RegionId, LoopInfo> loops;

  void on_enter(const trace::RegionInfo& region);
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration);
};

/// One dependence record plus the sequence number of its first dynamic
/// occurrence. The earliest occurrence defines the DepSites (their regions
/// are not in the key), exactly as the serial profiler's insertion order
/// does; merge_stripes keeps the record with the smallest first_seq.
struct MergedDep {
  Dependence dep;
  std::uint64_t first_seq = 0;
};

/// Profiling state of one address stripe. process() must be called with the
/// stripe's accesses in program order (the dispatch thread captures them in
/// order; per-stripe FIFO queues preserve it).
struct StripeState {
  mem::ShadowMemory<mem::ShadowCell> shadow;
  std::unordered_map<DepKey, MergedDep, DepKeyHash> deps;
  std::unordered_map<RegionId, std::unordered_set<Address>> footprints;
  std::unordered_map<RegionId, std::unordered_map<VarId, CarriedVarAccess>> carried;

  /// One pipeline iteration pair plus the reading access's sequence number,
  /// so merged pair lists can be restored to program order across stripes.
  struct PairRec {
    IterPair pair;
    std::uint64_t seq = 0;
  };
  struct PairData {
    std::vector<PairRec> pairs;
    std::unordered_set<Address> recorded_addresses;
  };
  std::unordered_map<LoopPairKey, PairData, LoopPairKeyHash> pair_data;

  /// Accesses processed by this stripe (shard-balance observability).
  std::uint64_t accesses = 0;

  void process(const CapturedAccess& access);

 private:
  void record_dependence(DepKind kind, VarId var, Address addr,
                         const mem::AccessRecord& src, const mem::AccessRecord& dst);
  void note_carried_access(RegionId loop, VarId var, SourceLine write_line,
                           SourceLine read_line, Address addr, trace::UpdateOp op);
  void maybe_record_pipeline_pair(const CapturedAccess& read,
                                  const mem::AccessRecord& write);
};

/// Relation between the loop stacks of two accesses: the outermost common
/// loop with differing iterations (the carrier), or the loops the two sides
/// branch into after an iteration-identical prefix.
struct LoopRelation {
  RegionId carrier;            ///< invalid if loop-independent
  std::uint64_t distance = 0;  ///< |iteration delta| at the carrier
  RegionId src_branch;         ///< src-side loop right after the common prefix
  RegionId dst_branch;         ///< dst-side loop right after the common prefix
};

[[nodiscard]] LoopRelation relate_loops(const mem::InlineLoopStack& src,
                                        const mem::InlineLoopStack& dst);

/// Striped shadow state: stripe_of() routes each address to its owning
/// stripe via a mixed hash (stripes are a power of two, so the mask picks
/// uniformly mixed bits rather than raw low address bits, which alias var
/// index 0 across variables).
class ShardedShadow {
 public:
  static constexpr std::size_t kMaxStripes = 4096;

  /// `stripes` is clamped to [1, kMaxStripes] and rounded up to a power of
  /// two.
  explicit ShardedShadow(std::size_t stripes = 1);

  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }
  [[nodiscard]] std::size_t stripe_of(Address addr) const {
    return static_cast<std::size_t>(mix(addr) & mask_);
  }
  [[nodiscard]] StripeState& stripe(std::size_t i) { return stripes_[i]; }
  [[nodiscard]] const StripeState& stripe(std::size_t i) const { return stripes_[i]; }
  [[nodiscard]] std::span<const StripeState> stripes() const { return stripes_; }

  /// Total shadow-memory footprint across stripes.
  [[nodiscard]] std::size_t touched_bytes() const;

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::vector<StripeState> stripes_;
  std::uint64_t mask_ = 0;
};

/// Deterministic reduction of per-stripe states into a Profile (see the
/// header comment for the determinism argument). `loops` is the front-end
/// LoopTally result. When `pool` is non-null the per-stripe finalization
/// (sorting each stripe's records) fans out over the pool; the fold itself
/// is always sequential in stripe order and the result is identical with or
/// without a pool.
[[nodiscard]] Profile merge_stripes(std::span<const StripeState> stripes,
                                    const std::unordered_map<RegionId, LoopInfo>& loops,
                                    rt::ThreadPool* pool = nullptr);

/// Canonical full-field dump of a Profile, used by the bit-identity oracle
/// tests and the bench fingerprint. Two Profiles produce equal dumps iff
/// every field a detector can observe is equal (including container
/// iteration order, which the canonical rebuild in merge_stripes fixes).
[[nodiscard]] std::string to_debug_string(const Profile& profile);

}  // namespace ppd::prof
