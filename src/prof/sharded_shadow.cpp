#include "prof/sharded_shadow.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <tuple>

#include "obs/obs.hpp"
#include "rt/parallel.hpp"
#include "support/assert.hpp"

namespace ppd::prof {
namespace {

/// Strict total order over the full dependence key. Distinct DepKeys always
/// compare unequal here (every key field participates), so the sorted
/// dependence list has exactly one valid permutation — a requirement for
/// bit-identity across stripe counts.
[[nodiscard]] auto dep_order(const Dependence& d) {
  return std::tuple(d.source.line, d.sink.line, static_cast<unsigned>(d.kind), d.var,
                    d.source.stmt, d.sink.stmt, d.carrier_loop);
}

[[nodiscard]] bool dep_less(const MergedDep& a, const MergedDep& b) {
  return dep_order(a.dep) < dep_order(b.dep);
}

/// Combines two records of the same static dependence. Commutative and
/// associative: the earliest dynamic occurrence (min first_seq) defines the
/// sites, counts sum, distances min/max, cross-activation ANDs — the same
/// result the serial profiler reaches by processing every occurrence in
/// program order.
void combine_dep(MergedDep& into, const MergedDep& other) {
  if (other.first_seq < into.first_seq) {
    const std::uint64_t count = into.dep.count;
    const std::uint64_t min_d = into.dep.min_distance;
    const std::uint64_t max_d = into.dep.max_distance;
    const bool cross = into.dep.cross_activation;
    into = other;
    into.dep.count += count;
    into.dep.min_distance = std::min(into.dep.min_distance, min_d);
    into.dep.max_distance = std::max(into.dep.max_distance, max_d);
    into.dep.cross_activation = into.dep.cross_activation && cross;
  } else {
    into.dep.count += other.dep.count;
    into.dep.min_distance = std::min(into.dep.min_distance, other.dep.min_distance);
    into.dep.max_distance = std::max(into.dep.max_distance, other.dep.max_distance);
    into.dep.cross_activation = into.dep.cross_activation && other.dep.cross_activation;
  }
}

struct LoopPairKeyLess {
  bool operator()(const LoopPairKey& a, const LoopPairKey& b) const {
    return std::tuple(a.x, a.y) < std::tuple(b.x, b.y);
  }
};

/// Per-stripe state flattened into sorted containers, ready for an ordered
/// two-way fold. Sorting is the parallelizable part of the merge.
struct StripeSummary {
  std::vector<MergedDep> deps;  ///< sorted by dep_order
  std::map<RegionId, std::map<VarId, CarriedVarAccess>> carried;
  /// Pairs per loop pair, ascending by the reading access's seq.
  std::map<LoopPairKey, std::vector<StripeState::PairRec>, LoopPairKeyLess> pairs;
  std::map<RegionId, std::uint64_t> footprints;  ///< distinct addresses per loop
};

[[nodiscard]] StripeSummary summarize(const StripeState& stripe) {
  StripeSummary summary;
  summary.deps.reserve(stripe.deps.size());
  for (const auto& [key, merged] : stripe.deps) summary.deps.push_back(merged);
  std::sort(summary.deps.begin(), summary.deps.end(), dep_less);
  for (const auto& [loop, vars] : stripe.carried) {
    auto& out = summary.carried[loop];
    for (const auto& [var, acc] : vars) out.emplace(var, acc);
  }
  for (const auto& [key, data] : stripe.pair_data) {
    // Each stripe records its pairs in program order already (per-stripe
    // processing is program-ordered), so this is a copy, not a sort.
    summary.pairs.emplace(key, data.pairs);
  }
  for (const auto& [loop, addresses] : stripe.footprints) {
    summary.footprints[loop] = addresses.size();
  }
  return summary;
}

void merge_carried(CarriedVarAccess& into, const CarriedVarAccess& other) {
  into.write_lines.insert(other.write_lines.begin(), other.write_lines.end());
  into.read_lines.insert(other.read_lines.begin(), other.read_lines.end());
  into.addresses.insert(other.addresses.begin(), other.addresses.end());
  into.occurrences += other.occurrences;
  into.ops.insert(other.ops.begin(), other.ops.end());
}

/// Ordered fold step: combines two summaries. All per-key operations are
/// commutative and associative, so the fold result is independent of the
/// fold order — stripe order is used purely for reproducibility.
[[nodiscard]] StripeSummary fold(StripeSummary acc, StripeSummary next) {
  if (acc.deps.empty() && acc.carried.empty() && acc.pairs.empty() &&
      acc.footprints.empty()) {
    return next;
  }
  StripeSummary out;
  // Two-pointer merge of the sorted dependence lists, combining equal keys.
  out.deps.reserve(acc.deps.size() + next.deps.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < acc.deps.size() && j < next.deps.size()) {
    if (dep_less(acc.deps[i], next.deps[j])) {
      out.deps.push_back(std::move(acc.deps[i++]));
    } else if (dep_less(next.deps[j], acc.deps[i])) {
      out.deps.push_back(std::move(next.deps[j++]));
    } else {
      MergedDep merged = std::move(acc.deps[i++]);
      combine_dep(merged, next.deps[j++]);
      out.deps.push_back(std::move(merged));
    }
  }
  for (; i < acc.deps.size(); ++i) out.deps.push_back(std::move(acc.deps[i]));
  for (; j < next.deps.size(); ++j) out.deps.push_back(std::move(next.deps[j]));

  out.carried = std::move(acc.carried);
  for (auto& [loop, vars] : next.carried) {
    auto& into = out.carried[loop];
    for (auto& [var, access] : vars) {
      auto [it, inserted] = into.try_emplace(var, std::move(access));
      if (!inserted) merge_carried(it->second, access);
    }
  }

  out.pairs = std::move(acc.pairs);
  for (auto& [key, pairs] : next.pairs) {
    auto [it, inserted] = out.pairs.try_emplace(key, std::move(pairs));
    if (!inserted) {
      // Addresses are stripe-disjoint, so the two lists never share an
      // address; interleave them back into program order by seq.
      std::vector<StripeState::PairRec> merged;
      merged.reserve(it->second.size() + pairs.size());
      std::merge(it->second.begin(), it->second.end(), pairs.begin(), pairs.end(),
                 std::back_inserter(merged),
                 [](const StripeState::PairRec& a, const StripeState::PairRec& b) {
                   return a.seq < b.seq;
                 });
      it->second = std::move(merged);
    }
  }

  out.footprints = std::move(acc.footprints);
  for (const auto& [loop, count] : next.footprints) out.footprints[loop] += count;
  return out;
}

}  // namespace

std::size_t DepKeyHash::operator()(const DepKey& k) const noexcept {
  std::size_t h = std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(k.kind));
  auto mix = [&h](std::size_t v) { h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2); };
  mix(std::hash<VarId>{}(k.var));
  mix(std::hash<SourceLine>{}(k.src_line));
  mix(std::hash<SourceLine>{}(k.dst_line));
  mix(std::hash<StatementId>{}(k.src_stmt));
  mix(std::hash<StatementId>{}(k.dst_stmt));
  mix(std::hash<RegionId>{}(k.carrier));
  return h;
}

void LoopTally::on_enter(const trace::RegionInfo& region) {
  if (region.kind != trace::RegionKind::Loop) return;
  LoopInfo& info = loops[region.id];
  info.loop = region.id;
  ++info.instances;
}

void LoopTally::on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) {
  LoopInfo& info = loops[loop.id];
  info.loop = loop.id;
  ++info.total_iterations;
  info.max_iterations = std::max(info.max_iterations, iteration + 1);
}

LoopRelation relate_loops(const mem::InlineLoopStack& src,
                          const mem::InlineLoopStack& dst) {
  LoopRelation rel;
  // Walk the common prefix of loop ids; the first level where the iteration
  // differs is the carrier loop (outermost-carried convention). Levels where
  // the loop ids themselves differ mark the branch into two distinct loops.
  const std::size_t common = std::min(src.size(), dst.size());
  std::size_t level = 0;
  for (; level < common; ++level) {
    if (src[level].loop != dst[level].loop) break;
    if (src[level].iteration != dst[level].iteration) {
      rel.carrier = src[level].loop;
      const std::uint64_t a = src[level].iteration;
      const std::uint64_t b = dst[level].iteration;
      rel.distance = a > b ? a - b : b - a;
      return rel;
    }
  }
  // Same iteration of every common-prefix loop: loop-independent at the
  // shared levels. Report the branching loops (if any) for cross-loop pairs.
  if (level < src.size()) rel.src_branch = src[level].loop;
  if (level < dst.size()) rel.dst_branch = dst[level].loop;
  return rel;
}

void StripeState::record_dependence(DepKind kind, VarId var, Address addr,
                                    const mem::AccessRecord& src,
                                    const mem::AccessRecord& dst) {
  const LoopRelation rel = relate_loops(src.loops, dst.loops);
  DepKey key{kind, var, src.line, dst.line, src.stmt, dst.stmt, rel.carrier};
  auto [it, inserted] = deps.try_emplace(key);
  Dependence& dep = it->second.dep;
  const bool cross = src.func.valid() && src.func == dst.func &&
                     src.func_activation != dst.func_activation;
  if (inserted) {
    dep.kind = kind;
    dep.var = var;
    dep.source = DepSite{src.line, src.stmt, src.region};
    dep.sink = DepSite{dst.line, dst.stmt, dst.region};
    dep.cross_activation = cross;
    dep.carrier_loop = rel.carrier;
    dep.min_distance = rel.distance;
    dep.max_distance = rel.distance;
    // Per-stripe processing is program-ordered, so the first occurrence seen
    // here is the stripe-wise earliest; merge_stripes picks the global
    // earliest by this sequence number.
    it->second.first_seq = dst.seq;
  } else {
    dep.min_distance = std::min(dep.min_distance, rel.distance);
    dep.max_distance = std::max(dep.max_distance, rel.distance);
    // A dependence that occurs within one activation at least once is a
    // genuine per-activation edge.
    dep.cross_activation = dep.cross_activation && cross;
  }
  ++dep.count;

  // Feed the reduction summary: accesses participating in an inter-iteration
  // RAW dependence of a loop, keyed by the written variable (Algorithm 3
  // instruments exactly these).
  if (rel.carrier.valid() && kind == DepKind::Raw) {
    note_carried_access(rel.carrier, var, src.line, dst.line, addr, src.op);
  }
}

void StripeState::note_carried_access(RegionId loop, VarId var, SourceLine write_line,
                                      SourceLine read_line, Address addr,
                                      trace::UpdateOp op) {
  CarriedVarAccess& acc = carried[loop][var];
  acc.write_lines.insert(write_line);
  acc.read_lines.insert(read_line);
  acc.addresses.insert(addr);
  ++acc.occurrences;
  acc.ops.insert(op);
}

void StripeState::maybe_record_pipeline_pair(const CapturedAccess& read,
                                             const mem::AccessRecord& write) {
  const LoopRelation rel = relate_loops(write.loops, read.record.loops);
  // A cross-loop pair exists when, after an iteration-identical common
  // prefix, the write continues into loop x and the read into loop y != x.
  if (rel.carrier.valid()) return;
  if (!rel.src_branch.valid() || !rel.dst_branch.valid()) return;
  if (rel.src_branch == rel.dst_branch) return;

  const LoopPairKey key{rel.src_branch, rel.dst_branch};
  PairData& data = pair_data[key];
  // Keep only the *first* read of each address in loop y; the shadow cell
  // already holds the *last* write in loop x because loop x finished before
  // loop y started reading (sequential execution). Addresses are owned by
  // exactly one stripe, so per-stripe dedup equals global dedup.
  if (!data.recorded_addresses.insert(read.addr).second) return;
  data.pairs.push_back(PairRec{IterPair{write.loops.iteration_of(rel.src_branch),
                                        read.record.loops.iteration_of(rel.dst_branch)},
                               read.record.seq});
}

void StripeState::process(const CapturedAccess& access) {
  ++accesses;
  for (const trace::LoopPosition& pos : access.record.loops.span()) {
    footprints[pos.loop].insert(access.addr);
  }
  mem::ShadowCell& cell = shadow.cell(access.addr);
  const mem::AccessRecord& current = access.record;

  if (access.kind == trace::AccessKind::Read) {
    if (cell.last_write.valid) {
      record_dependence(DepKind::Raw, access.var, access.addr, cell.last_write, current);
      maybe_record_pipeline_pair(access, cell.last_write);
    }
    cell.last_read = current;
  } else {
    if (cell.last_write.valid) {
      record_dependence(DepKind::Waw, access.var, access.addr, cell.last_write, current);
    }
    if (cell.last_read.valid && cell.last_read.seq > cell.last_write.seq) {
      record_dependence(DepKind::War, access.var, access.addr, cell.last_read, current);
    }
    cell.last_write = current;
  }
}

ShardedShadow::ShardedShadow(std::size_t stripes) {
  std::size_t n = std::bit_ceil(std::clamp<std::size_t>(stripes, 1, kMaxStripes));
  stripes_ = std::vector<StripeState>(n);
  mask_ = n - 1;
}

std::uint64_t ShardedShadow::mix(std::uint64_t x) {
  // splitmix64 finalizer: spreads the (var << 40 | index) address structure
  // across all stripe bits so neither dense indices nor dense var ids load
  // one stripe.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t ShardedShadow::touched_bytes() const {
  std::size_t total = 0;
  for (const StripeState& stripe : stripes_) total += stripe.shadow.touched_bytes();
  return total;
}

Profile merge_stripes(std::span<const StripeState> stripes,
                      const std::unordered_map<RegionId, LoopInfo>& loops,
                      rt::ThreadPool* pool) {
  PPD_OBS_SPAN("prof.merge");
  StripeSummary total;
  if (pool != nullptr && stripes.size() > 1) {
    total = rt::parallel_map_fold(
        *pool, stripes.size(), StripeSummary{},
        [&](std::uint64_t i) { return summarize(stripes[i]); },
        [](StripeSummary acc, StripeSummary next) {
          return fold(std::move(acc), std::move(next));
        });
  } else {
    for (const StripeState& stripe : stripes) {
      total = fold(std::move(total), summarize(stripe));
    }
  }

  Profile profile;
  profile.dependences.reserve(total.deps.size());
  for (const MergedDep& merged : total.deps) profile.dependences.push_back(merged.dep);

  // Rebuild every hash map by ascending key so iteration order — which
  // detectors and report tables observe — is a canonical function of the
  // content, not of insertion history.
  std::vector<RegionId> loop_ids;
  loop_ids.reserve(loops.size());
  for (const auto& [id, info] : loops) loop_ids.push_back(id);
  std::sort(loop_ids.begin(), loop_ids.end());
  for (const RegionId id : loop_ids) {
    LoopInfo info = loops.at(id);
    auto it = total.footprints.find(id);
    info.distinct_addresses = it == total.footprints.end() ? 0 : it->second;
    profile.loops.emplace(id, info);
  }

  for (const auto& [loop, vars] : total.carried) {
    auto& out = profile.carried_vars[loop];
    for (const auto& [var, access] : vars) out.emplace(var, access);
  }

  for (const auto& [key, pairs] : total.pairs) {
    std::vector<IterPair> flat;
    flat.reserve(pairs.size());
    for (const StripeState::PairRec& rec : pairs) flat.push_back(rec.pair);
    profile.loop_pairs.emplace(key, std::move(flat));
  }
  return profile;
}

std::string to_debug_string(const Profile& profile) {
  std::string out;
  auto id = [](auto v) {
    return v.valid() ? std::to_string(v.value()) : std::string("-");
  };
  out += "deps " + std::to_string(profile.dependences.size()) + "\n";
  for (const Dependence& d : profile.dependences) {
    out += std::string(to_string(d.kind)) + " var=" + id(d.var);
    out += " src=" + std::to_string(d.source.line) + "/" + id(d.source.stmt) + "/" +
           id(d.source.region);
    out += " dst=" + std::to_string(d.sink.line) + "/" + id(d.sink.stmt) + "/" +
           id(d.sink.region);
    out += " cross=" + std::to_string(d.cross_activation);
    out += " carrier=" + id(d.carrier_loop);
    out += " dist=" + std::to_string(d.min_distance) + ".." +
           std::to_string(d.max_distance);
    out += " count=" + std::to_string(d.count) + "\n";
  }
  // Hash-map sections print in iteration order on purpose: the dump then
  // also certifies that both paths expose identical container layouts.
  out += "loops\n";
  for (const auto& [loop, info] : profile.loops) {
    out += "  " + id(loop) + " iters=" + std::to_string(info.total_iterations) +
           " inst=" + std::to_string(info.instances) +
           " max=" + std::to_string(info.max_iterations) +
           " addrs=" + std::to_string(info.distinct_addresses) + "\n";
  }
  out += "carried\n";
  for (const auto& [loop, vars] : profile.carried_vars) {
    for (const auto& [var, acc] : vars) {
      out += "  loop=" + id(loop) + " var=" + id(var) + " w=[";
      for (const SourceLine line : acc.write_lines) out += std::to_string(line) + " ";
      out += "] r=[";
      for (const SourceLine line : acc.read_lines) out += std::to_string(line) + " ";
      out += "] addrs=" + std::to_string(acc.addresses.size()) +
             " occ=" + std::to_string(acc.occurrences) + " ops=[";
      for (const trace::UpdateOp op : acc.ops) {
        out += std::string(trace::to_string(op)) + " ";
      }
      out += "]\n";
    }
  }
  out += "pairs\n";
  for (const auto& [key, pairs] : profile.loop_pairs) {
    out += "  " + id(key.x) + "->" + id(key.y) + ":";
    for (const IterPair& pair : pairs) {
      out += " (" + std::to_string(pair.ix) + "," + std::to_string(pair.iy) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ppd::prof
