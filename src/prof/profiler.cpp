#include "prof/profiler.hpp"

#include "obs/obs.hpp"

namespace ppd::prof {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::Raw: return "RAW";
    case DepKind::War: return "WAR";
    case DepKind::Waw: return "WAW";
  }
  return "?";
}

std::vector<const Dependence*> Profile::carried_in(RegionId loop) const {
  std::vector<const Dependence*> result;
  for (const Dependence& dep : dependences) {
    if (dep.carrier_loop == loop) result.push_back(&dep);
  }
  return result;
}

std::vector<const Dependence*> Profile::with_sink_in(RegionId region) const {
  std::vector<const Dependence*> result;
  for (const Dependence& dep : dependences) {
    if (dep.sink.region == region) result.push_back(&dep);
  }
  return result;
}

const LoopInfo* Profile::loop_info(RegionId loop) const {
  auto it = loops.find(loop);
  return it == loops.end() ? nullptr : &it->second;
}

void DependenceProfiler::on_region_enter(const trace::RegionInfo& region) {
  tally_.on_enter(region);
}

void DependenceProfiler::on_region_exit(const trace::RegionInfo& region) {
  (void)region;
}

void DependenceProfiler::on_iteration(const trace::RegionInfo& loop,
                                      std::uint64_t iteration) {
  tally_.on_iteration(loop, iteration);
}

void DependenceProfiler::on_access(const trace::AccessEvent& access) {
  // Guard against corrupt streams (replayed traces are untrusted input): an
  // access without a defined variable or with loop nesting beyond what the
  // inline records hold is ignored and counted instead of killing the run.
  if (!profilable(access)) {
    ++ignored_events_;
    return;
  }
  state_.process(capture(access));
}

void DependenceProfiler::on_trace_end() {}

Profile DependenceProfiler::take() const {
  PPD_OBS_SPAN("prof.take");
  return merge_stripes({&state_, 1}, tally_.loops);
}

}  // namespace ppd::prof
