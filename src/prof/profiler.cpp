#include "prof/profiler.hpp"

#include <algorithm>
#include <tuple>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "trace/context.hpp"

namespace ppd::prof {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::Raw: return "RAW";
    case DepKind::War: return "WAR";
    case DepKind::Waw: return "WAW";
  }
  return "?";
}

std::vector<const Dependence*> Profile::carried_in(RegionId loop) const {
  std::vector<const Dependence*> result;
  for (const Dependence& dep : dependences) {
    if (dep.carrier_loop == loop) result.push_back(&dep);
  }
  return result;
}

std::vector<const Dependence*> Profile::with_sink_in(RegionId region) const {
  std::vector<const Dependence*> result;
  for (const Dependence& dep : dependences) {
    if (dep.sink.region == region) result.push_back(&dep);
  }
  return result;
}

const LoopInfo* Profile::loop_info(RegionId loop) const {
  auto it = loops.find(loop);
  return it == loops.end() ? nullptr : &it->second;
}

std::size_t DependenceProfiler::DepKeyHash::operator()(const DepKey& k) const noexcept {
  std::size_t h = std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(k.kind));
  auto mix = [&h](std::size_t v) { h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2); };
  mix(std::hash<VarId>{}(k.var));
  mix(std::hash<SourceLine>{}(k.src_line));
  mix(std::hash<SourceLine>{}(k.dst_line));
  mix(std::hash<StatementId>{}(k.src_stmt));
  mix(std::hash<StatementId>{}(k.dst_stmt));
  mix(std::hash<RegionId>{}(k.carrier));
  return h;
}

void DependenceProfiler::on_region_enter(const trace::RegionInfo& region) {
  if (region.kind != trace::RegionKind::Loop) return;
  LoopInfo& info = loops_[region.id];
  info.loop = region.id;
  ++info.instances;
}

void DependenceProfiler::on_region_exit(const trace::RegionInfo& region) {
  (void)region;
}

void DependenceProfiler::on_iteration(const trace::RegionInfo& loop,
                                      std::uint64_t iteration) {
  LoopInfo& info = loops_[loop.id];
  info.loop = loop.id;
  ++info.total_iterations;
  info.max_iterations = std::max(info.max_iterations, iteration + 1);
}

DependenceProfiler::LoopRelation DependenceProfiler::relate_loops(
    const mem::InlineLoopStack& src, const mem::InlineLoopStack& dst) {
  LoopRelation rel;
  // Walk the common prefix of loop ids; the first level where the iteration
  // differs is the carrier loop (outermost-carried convention). Levels where
  // the loop ids themselves differ mark the branch into two distinct loops.
  const std::size_t common = std::min(src.size(), dst.size());
  std::size_t level = 0;
  for (; level < common; ++level) {
    if (src[level].loop != dst[level].loop) break;
    if (src[level].iteration != dst[level].iteration) {
      rel.carrier = src[level].loop;
      const std::uint64_t a = src[level].iteration;
      const std::uint64_t b = dst[level].iteration;
      rel.distance = a > b ? a - b : b - a;
      return rel;
    }
  }
  // Same iteration of every common-prefix loop: loop-independent at the
  // shared levels. Report the branching loops (if any) for cross-loop pairs.
  if (level < src.size()) rel.src_branch = src[level].loop;
  if (level < dst.size()) rel.dst_branch = dst[level].loop;
  return rel;
}

void DependenceProfiler::record_dependence(DepKind kind, VarId var, Address addr,
                                           const mem::AccessRecord& src,
                                           const mem::AccessRecord& dst) {
  const LoopRelation rel = relate_loops(src.loops, dst.loops);
  DepKey key{kind, var, src.line, dst.line, src.stmt, dst.stmt, rel.carrier};
  auto [it, inserted] = deps_.try_emplace(key);
  Dependence& dep = it->second;
  const bool cross = src.func.valid() && src.func == dst.func &&
                     src.func_activation != dst.func_activation;
  if (inserted) {
    dep.kind = kind;
    dep.var = var;
    dep.source = DepSite{src.line, src.stmt, src.region};
    dep.sink = DepSite{dst.line, dst.stmt, dst.region};
    dep.cross_activation = cross;
    dep.carrier_loop = rel.carrier;
    dep.min_distance = rel.distance;
    dep.max_distance = rel.distance;
  } else {
    dep.min_distance = std::min(dep.min_distance, rel.distance);
    dep.max_distance = std::max(dep.max_distance, rel.distance);
    // A dependence that occurs within one activation at least once is a
    // genuine per-activation edge.
    dep.cross_activation = dep.cross_activation && cross;
  }
  ++dep.count;

  // Feed the reduction summary: accesses participating in an inter-iteration
  // RAW dependence of a loop, keyed by the written variable (Algorithm 3
  // instruments exactly these).
  if (rel.carrier.valid() && kind == DepKind::Raw) {
    note_carried_access(rel.carrier, var, src.line, dst.line, addr, src.op);
  }
}

void DependenceProfiler::note_carried_access(RegionId loop, VarId var,
                                             SourceLine write_line, SourceLine read_line,
                                             Address addr, trace::UpdateOp op) {
  CarriedVarAccess& acc = carried_vars_[loop][var];
  acc.write_lines.insert(write_line);
  acc.read_lines.insert(read_line);
  acc.addresses.insert(addr);
  ++acc.occurrences;
  acc.ops.insert(op);
}

void DependenceProfiler::maybe_record_pipeline_pair(const trace::AccessEvent& read,
                                                    const mem::AccessRecord& write) {
  const mem::InlineLoopStack read_loops{read.loop_stack};
  const LoopRelation rel = relate_loops(write.loops, read_loops);
  // A cross-loop pair exists when, after an iteration-identical common
  // prefix, the write continues into loop x and the read into loop y != x.
  if (rel.carrier.valid()) return;
  if (!rel.src_branch.valid() || !rel.dst_branch.valid()) return;
  if (rel.src_branch == rel.dst_branch) return;

  const LoopPairKey key{rel.src_branch, rel.dst_branch};
  PairData& data = loop_pairs_[key];
  // Keep only the *first* read of each address in loop y; the shadow cell
  // already holds the *last* write in loop x because loop x finished before
  // loop y started reading (sequential execution).
  if (!data.recorded_addresses.insert(read.addr).second) return;
  data.pairs.push_back(IterPair{write.loops.iteration_of(rel.src_branch),
                                read_loops.iteration_of(rel.dst_branch)});
}

void DependenceProfiler::on_access(const trace::AccessEvent& access) {
  // Guard against corrupt streams (replayed traces are untrusted input): an
  // access without a defined variable or with loop nesting beyond what the
  // inline records hold is ignored and counted instead of killing the run.
  if (!access.var.valid() ||
      access.loop_stack.size() > mem::InlineLoopStack::kMaxDepth) {
    ++ignored_events_;
    return;
  }
  for (const trace::LoopPosition& pos : access.loop_stack) {
    loop_footprints_[pos.loop].insert(access.addr);
  }
  mem::ShadowCell& cell = shadow_.cell(access.addr);
  const mem::AccessRecord current = mem::AccessRecord::from_event(access);

  if (access.kind == trace::AccessKind::Read) {
    if (cell.last_write.valid) {
      record_dependence(DepKind::Raw, access.var, access.addr, cell.last_write, current);
      maybe_record_pipeline_pair(access, cell.last_write);
    }
    cell.last_read = current;
  } else {
    if (cell.last_write.valid) {
      record_dependence(DepKind::Waw, access.var, access.addr, cell.last_write, current);
    }
    if (cell.last_read.valid && cell.last_read.seq > cell.last_write.seq) {
      record_dependence(DepKind::War, access.var, access.addr, cell.last_read, current);
    }
    cell.last_write = current;
  }
}

void DependenceProfiler::on_trace_end() {}

Profile DependenceProfiler::take() const {
  PPD_OBS_SPAN("prof.take");
  Profile profile;
  profile.dependences.reserve(deps_.size());
  for (const auto& [key, dep] : deps_) profile.dependences.push_back(dep);
  // Deterministic order for tests and table output.
  std::sort(profile.dependences.begin(), profile.dependences.end(),
            [](const Dependence& a, const Dependence& b) {
              return std::tie(a.source.line, a.sink.line, a.kind, a.var) <
                     std::tie(b.source.line, b.sink.line, b.kind, b.var);
            });
  profile.loops = loops_;
  for (auto& [loop, info] : profile.loops) {
    auto it = loop_footprints_.find(loop);
    info.distinct_addresses = it == loop_footprints_.end() ? 0 : it->second.size();
  }
  profile.carried_vars = carried_vars_;
  for (const auto& [key, data] : loop_pairs_) {
    profile.loop_pairs.emplace(key, data.pairs);
  }
  return profile;
}

}  // namespace ppd::prof
