// Data-dependence model produced by the dynamic profiler.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/ids.hpp"
#include "trace/events.hpp"

namespace ppd::prof {

/// Dependence kind. RAW = true/flow dependence (read-after-write), the kind
/// that drives pattern structure; WAR/WAW are recorded for do-all checks.
enum class DepKind : std::uint8_t { Raw, War, Waw };

[[nodiscard]] const char* to_string(DepKind kind);

/// One side of a dependence (the static access site).
struct DepSite {
  SourceLine line = 0;
  StatementId stmt;
  RegionId region;

  friend bool operator==(const DepSite&, const DepSite&) = default;
};

/// A (deduplicated) static data dependence: `sink` depends on `source`.
struct Dependence {
  DepKind kind = DepKind::Raw;
  VarId var;
  DepSite source;  ///< the earlier access
  DepSite sink;    ///< the later access that depends on it
  /// True when both endpoints sit in the same (recursion-merged) function
  /// but in *different* dynamic activations — e.g. the value returned from a
  /// recursive call to the caller. Such dependences are excluded from the
  /// per-activation CU graph (Fig. 3 shows one cilksort activation).
  bool cross_activation = false;
  /// The outermost common loop whose iteration differs between the two
  /// accesses; invalid if the dependence is loop-independent.
  RegionId carrier_loop;
  /// Iteration-distance range observed at the carrier loop (0 when
  /// loop-independent).
  std::uint64_t min_distance = 0;
  std::uint64_t max_distance = 0;
  /// Number of dynamic occurrences merged into this record.
  std::uint64_t count = 0;

  [[nodiscard]] bool loop_carried() const { return carrier_loop.valid(); }
};

/// Dynamic facts about one static loop.
struct LoopInfo {
  RegionId loop;
  std::uint64_t total_iterations = 0;  ///< sum over all dynamic instances
  std::uint64_t instances = 0;         ///< number of dynamic loop entries
  std::uint64_t max_iterations = 0;    ///< largest single-instance trip count
  /// Distinct addresses touched inside the loop: its data footprint. §III-A
  /// names locality-aware fusion advice as future work ("DiscoPoP currently
  /// does not report the amount of data being handled"); this field provides
  /// the missing measurement.
  std::uint64_t distinct_addresses = 0;
};

/// Per-variable line summary of loop-carried accesses inside one loop; the
/// input to reduction detection (Algorithm 3): which source lines wrote the
/// variable and which lines read it, restricted to accesses participating in
/// inter-iteration dependences of that loop.
struct CarriedVarAccess {
  std::set<SourceLine> write_lines;
  std::set<SourceLine> read_lines;
  /// Distinct addresses participating in the inter-iteration dependences.
  std::set<Address> addresses;
  /// Dynamic occurrences of the inter-iteration dependences. A genuine
  /// reduction re-updates the *same* accumulator address every iteration
  /// (occurrences >> addresses); a stencil chain like reg_detect's
  /// `path[i][j] = path[i-1][j-1] + ...` touches each address once.
  std::uint64_t occurrences = 0;
  /// Update-operation tags observed on the participating writes.
  std::set<trace::UpdateOp> ops;
};

/// An ordered pair of loops with a cross-loop RAW dependence, i.e. a
/// multi-loop pipeline candidate: loop `x` writes memory that loop `y`
/// later reads (§III-A).
struct LoopPairKey {
  RegionId x;
  RegionId y;

  friend bool operator==(const LoopPairKey&, const LoopPairKey&) = default;
};

struct LoopPairKeyHash {
  std::size_t operator()(const LoopPairKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(key.x.value()) << 32) | key.y.value());
  }
};

/// One filtered iteration pair: iteration `iy` of loop y first read a memory
/// location whose last write happened in iteration `ix` of loop x.
struct IterPair {
  std::uint64_t ix = 0;
  std::uint64_t iy = 0;

  friend bool operator==(const IterPair&, const IterPair&) = default;
};

/// Everything the dynamic dependence profiler extracts from one traced
/// execution (possibly merged over several representative inputs).
struct Profile {
  std::vector<Dependence> dependences;
  std::unordered_map<RegionId, LoopInfo> loops;
  /// loop -> var -> carried access-line summary (reduction detection input).
  std::unordered_map<RegionId, std::unordered_map<VarId, CarriedVarAccess>> carried_vars;
  /// Multi-loop pipeline iteration pairs per cross-loop RAW loop pair.
  std::unordered_map<LoopPairKey, std::vector<IterPair>, LoopPairKeyHash> loop_pairs;

  /// All loop-carried dependences of `loop`.
  [[nodiscard]] std::vector<const Dependence*> carried_in(RegionId loop) const;

  /// All dependences whose sink lies in region `region`.
  [[nodiscard]] std::vector<const Dependence*> with_sink_in(RegionId region) const;

  [[nodiscard]] const LoopInfo* loop_info(RegionId loop) const;
};

}  // namespace ppd::prof
