// Concurrent dependence-profiling front-end over the striped shadow core.
//
// The trace reader dispatches events on one thread in program order (the
// sink contract). Previously the profiler also did all shadow-memory and
// dependence-map work on that thread, which BENCH_ingest.json showed to be
// the pipeline's serialization wall. This front-end keeps only the cheap
// part on the dispatch thread — materializing each access and appending it
// to its address stripe's buffer — and moves the heavy StripeState::process
// work onto rt::ThreadPool workers, overlapped with dispatch.
//
// Concurrency scheme (one actor per stripe):
//  * the dispatch thread batches captured accesses per stripe; a full block
//    is pushed onto the stripe's FIFO queue;
//  * at most one worker task drains a given stripe at a time (a `scheduled`
//    flag under the queue mutex), so each StripeState is only ever touched
//    by one thread at a time and sees its blocks in dispatch order — the
//    program-order-per-stripe precondition of the core;
//  * take()/drain() wait on a pending-block count, then run the same
//    deterministic merge_stripes() reduction the serial profiler uses.
//
// Output is therefore bit-identical to DependenceProfiler for any stripe
// count, pool size, and worker completion order (see DESIGN.md §10).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "prof/dependence.hpp"
#include "prof/sharded_shadow.hpp"
#include "trace/events.hpp"

namespace ppd::rt {
class ThreadPool;
}

namespace ppd::prof {

/// EventSink front-end profiling concurrently into a ShardedShadow.
/// Subscribe to a TraceContext like DependenceProfiler; events must arrive
/// from a single thread (the usual sink contract).
class ShardedProfiler final : public trace::EventSink {
 public:
  struct Options {
    /// Address stripes (rounded up to a power of two, clamped to
    /// ShardedShadow::kMaxStripes). More stripes mean less queue contention
    /// and finer work granularity; 64 feeds 8 workers comfortably.
    std::size_t shards = 64;
    /// Accesses buffered per stripe before a block is queued for a worker.
    std::size_t block_records = 4096;
    /// Worker pool; null processes every access inline on the dispatch
    /// thread (still through the striped state, for shard-count tests).
    rt::ThreadPool* pool = nullptr;
  };

  ShardedProfiler() : ShardedProfiler(Options{}) {}
  explicit ShardedProfiler(Options options);
  ~ShardedProfiler() override;

  ShardedProfiler(const ShardedProfiler&) = delete;
  ShardedProfiler& operator=(const ShardedProfiler&) = delete;

  void on_region_enter(const trace::RegionInfo& region) override;
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const trace::AccessEvent& access) override;
  void on_trace_end() override;

  /// Flushes every buffered block and blocks until all workers drained
  /// their stripes. After drain() the stripe states are quiescent.
  void drain();

  /// Drains, then merges all stripes into the canonical Profile. Like the
  /// serial profiler, taking is non-destructive: profiling may continue and
  /// a later take() returns the further-merged profile. Throws
  /// std::runtime_error if a worker failed (e.g. allocation failure).
  [[nodiscard]] Profile take();

  [[nodiscard]] std::size_t shard_count() const { return shadow_.stripe_count(); }
  [[nodiscard]] std::size_t shadow_bytes() const { return shadow_.touched_bytes(); }
  [[nodiscard]] std::uint64_t ignored_events() const { return ignored_events_; }

 private:
  struct StripeQueue {
    std::mutex mutex;
    std::deque<std::vector<CapturedAccess>> blocks;
    bool scheduled = false;  ///< a worker task currently owns this stripe
  };

  void flush_stripe(std::size_t stripe);
  void drain_stripe(std::size_t stripe);

  Options options_;
  ShardedShadow shadow_;
  LoopTally tally_;
  std::uint64_t ignored_events_ = 0;

  /// Dispatch-side per-stripe fill buffers (dispatch thread only).
  std::vector<std::vector<CapturedAccess>> fill_;
  /// Worker-side queues (unique_ptr: mutexes are not movable).
  std::vector<std::unique_ptr<StripeQueue>> queues_;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_blocks_ = 0;  ///< queued but not yet processed blocks
  std::size_t worker_errors_ = 0;  ///< tasks that threw (profile is suspect)
};

}  // namespace ppd::prof
