#include "report/markdown.hpp"

#include "core/task_parallelism.hpp"
#include "support/table.hpp"

namespace ppd::report {
namespace {

using support::format_fixed;

std::string region_name(const trace::TraceContext& program, RegionId region) {
  return region.valid() ? program.region(region).name : std::string("<unknown>");
}

const char* role_color(core::CuRole role) {
  switch (role) {
    case core::CuRole::Fork: return "lightblue";
    case core::CuRole::Worker: return "palegreen";
    case core::CuRole::Barrier: return "lightsalmon";
    case core::CuRole::Unmarked: return "white";
  }
  return "white";
}

}  // namespace

std::string markdown_report(const core::AnalysisResult& analysis,
                            const trace::TraceContext& program, const std::string& title) {
  std::string md;
  md += "# Pattern analysis: " + title + "\n\n";
  md += "Primary pattern: **" + analysis.primary_description + "** (supporting structure: " +
        core::supporting_structure(analysis.primary) + ")\n\n";

  md += "## Hotspots\n\n| Region | Kind | Share |\n|---|---|---|\n";
  for (pet::NodeIndex node : analysis.pet.hotspots(0.02)) {
    const pet::PetNode& n = analysis.pet.node(node);
    md += "| `" + n.name + "` | " + (n.is_loop() ? "loop" : "function") +
          (n.recursive ? " (recursive)" : "") + " | " +
          format_fixed(analysis.pet.cost_fraction(node) * 100.0, 2) + "% |\n";
  }
  md += "\n";

  const auto pipelines = analysis.reported_pipelines();
  if (!pipelines.empty()) {
    md += "## Multi-loop pipelines\n\n| Producer | Consumer | a | b | e | Fusion |\n"
          "|---|---|---|---|---|---|\n";
    for (const core::MultiLoopPipeline* p : pipelines) {
      md += "| `" + region_name(program, p->loop_x) + "` | `" +
            region_name(program, p->loop_y) + "` | " + format_fixed(p->fit.a, 2) + " | " +
            format_fixed(p->fit.b, 2) + " | " + format_fixed(p->e, 2) + " | " +
            (p->fusion ? "yes" : "no") + " |\n";
    }
    md += "\n";
  }

  if (!analysis.reductions.empty()) {
    md += "## Reductions (Algorithm 3)\n\n| Loop | Variable | Line | Operator |\n"
          "|---|---|---|---|\n";
    for (const core::ReductionCandidate& r : analysis.reductions) {
      md += "| `" + region_name(program, r.loop) + "` | `" + program.var_info(r.var).name +
            "` | " + std::to_string(r.line) + " | " + trace::to_string(r.op) + " |\n";
    }
    md += "\n";
  }

  const core::ScopeTaskParallelism* tasks = analysis.primary_tasks();
  if (tasks != nullptr && tasks->tp.worker_count() >= 1) {
    md += "## Task classification in `" + region_name(program, tasks->tp.scope) + "`\n\n";
    md += "| CU | Name | Role |\n|---|---|---|\n";
    for (std::size_t i = 0; i < tasks->tp.roles.size(); ++i) {
      md += "| CU_" + std::to_string(i) + " | `" +
            tasks->graph.cu(static_cast<graph::NodeIndex>(i)).name + "` | " +
            core::to_string(tasks->tp.roles[i]) + " |\n";
    }
    md += "\nEstimated speedup: " + format_fixed(tasks->tp.estimated_speedup, 2) + "\n\n";
  }

  const auto ranked = core::rank_patterns(analysis, program);
  if (!ranked.empty()) {
    md += "## Ranked patterns\n\n| Pattern | Benefit | Effort | Score |\n|---|---|---|---|\n";
    for (const core::RankedPattern& r : ranked) {
      md += "| " + r.description + " | " + format_fixed(r.expected_benefit, 2) + "x | " +
            core::to_string(r.effort) + " | " + format_fixed(r.score, 3) + " |\n";
    }
    md += "\n";
  }

  const auto hints = core::derive_hints(analysis, program);
  if (!hints.empty()) {
    md += "## Transformation hints\n\n";
    for (const core::TransformationHint& h : hints) {
      md += "- **" + std::string(core::to_string(h.kind)) + "**: " + h.text + "\n";
    }
    md += "\n";
  }
  return md;
}

std::string pet_to_dot(const pet::Pet& pet) {
  std::string dot = "digraph PET {\n  rankdir=TB;\n  node [shape=box, style=filled];\n";
  for (const pet::PetNode& n : pet.nodes()) {
    const double share = pet.cost_fraction(n.index);
    std::string label = n.index == 0 ? "<program>" : n.name;
    if (n.is_loop()) label += "\\n(loop, " + std::to_string(n.iterations) + " iters)";
    if (n.recursive) label += "\\n[recursive]";
    label += "\\n" + support::format_fixed(share * 100.0, 1) + "%";
    // Hotter nodes get a warmer fill.
    const char* fill = share >= 0.5 ? "salmon" : share >= 0.1 ? "khaki" : "white";
    dot += "  n" + std::to_string(n.index) + " [label=\"" + label + "\", fillcolor=" + fill +
           "];\n";
  }
  for (const pet::PetNode& n : pet.nodes()) {
    for (pet::NodeIndex child : n.children) {
      dot += "  n" + std::to_string(n.index) + " -> n" + std::to_string(child) + ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

std::string cu_graph_to_dot(const cu::CuGraph& graph, const core::TaskParallelism* roles) {
  std::string dot = "digraph CUGraph {\n  rankdir=LR;\n  node [shape=ellipse, style=filled];\n";
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const cu::Cu& cu = graph.cu(static_cast<graph::NodeIndex>(i));
    std::string label = "CU_" + std::to_string(i) + "\\n" + cu.name;
    const char* fill = "white";
    if (roles != nullptr && i < roles->roles.size()) {
      label += "\\n[" + std::string(core::to_string(roles->roles[i])) + "]";
      fill = role_color(roles->roles[i]);
    }
    dot += "  c" + std::to_string(i) + " [label=\"" + label + "\", fillcolor=" + fill + "];\n";
  }
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (graph::NodeIndex succ : graph.graph.successors(static_cast<graph::NodeIndex>(i))) {
      dot += "  c" + std::to_string(i) + " -> c" + std::to_string(succ) + ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace ppd::report
