// Markdown analysis report and Graphviz exports.
//
// The CLI can persist a full analysis as a markdown document (for code
// review / issue threads) and the PET / CU graph as DOT for rendering with
// Graphviz — the release-facing counterpart of the paper's textual output.
#pragma once

#include <string>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "cu/cu.hpp"
#include "pet/pet.hpp"
#include "trace/context.hpp"

namespace ppd::report {

/// Renders the complete analysis (hotspots, primary pattern, pipelines,
/// reductions, task classification, ranking, hints) as a markdown document.
[[nodiscard]] std::string markdown_report(const core::AnalysisResult& analysis,
                                          const trace::TraceContext& program,
                                          const std::string& title);

/// Graphviz DOT of the Program Execution Tree (hotspot share per node).
[[nodiscard]] std::string pet_to_dot(const pet::Pet& pet);

/// Graphviz DOT of a CU graph, optionally colored by the Algorithm 1 roles.
[[nodiscard]] std::string cu_graph_to_dot(const cu::CuGraph& graph,
                                          const core::TaskParallelism* roles = nullptr);

}  // namespace ppd::report
