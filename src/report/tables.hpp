// Evaluation-table assembly (Tables III-VI of the paper).
#pragma once

#include <string>
#include <vector>

#include "support/table.hpp"

namespace ppd::report {

/// One measured Table III row.
struct Table3Row {
  std::string application;
  std::string suite;
  int loc = 0;
  double hotspot_pct = 0.0;
  double speedup = 1.0;
  int threads = 1;
  std::string pattern;
};

/// Builds the Table III text table (measured values).
[[nodiscard]] support::TextTable make_table3(const std::vector<Table3Row>& rows);

/// One measured Table IV row (multi-loop pipeline summary).
struct Table4Row {
  std::string application;
  double a = 0.0;
  double b = 0.0;
  double e = 0.0;
};

[[nodiscard]] support::TextTable make_table4(const std::vector<Table4Row>& rows);

/// One measured Table V row (task parallelism summary).
struct Table5Row {
  std::string application;
  std::uint64_t total_instructions = 0;
  std::uint64_t critical_path = 0;
  double estimated_speedup = 1.0;
};

[[nodiscard]] support::TextTable make_table5(const std::vector<Table5Row>& rows);

/// One Table VI column (a benchmark) with the three tools' verdicts.
struct Table6Column {
  std::string benchmark;
  std::string sambamba;
  std::string icc;
  std::string discopop;
};

[[nodiscard]] support::TextTable make_table6(const std::vector<Table6Column>& columns);

}  // namespace ppd::report
