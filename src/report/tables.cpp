#include "report/tables.hpp"

namespace ppd::report {

using support::Align;
using support::format_fixed;
using support::TextTable;

TextTable make_table3(const std::vector<Table3Row>& rows) {
  TextTable t;
  t.set_header({"Application", "Benchmark Suite", "LOC", "Exec Inst % in Hotspot", "Speedup",
                "Threads", "Detected Pattern"});
  t.set_alignment({Align::Left, Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Left});
  for (const Table3Row& r : rows) {
    t.add_row({r.application, r.suite, std::to_string(r.loc),
               format_fixed(r.hotspot_pct, 2) + "%", format_fixed(r.speedup, 2),
               std::to_string(r.threads), r.pattern});
  }
  return t;
}

TextTable make_table4(const std::vector<Table4Row>& rows) {
  TextTable t;
  t.set_header({"Application", "a", "b", "e"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const Table4Row& r : rows) {
    t.add_row({r.application, format_fixed(r.a, 2), format_fixed(r.b, 2),
               format_fixed(r.e, 2)});
  }
  return t;
}

TextTable make_table5(const std::vector<Table5Row>& rows) {
  TextTable t;
  t.set_header({"Application", "Total Instructions", "Instructions on Critical Path",
                "Estimated Speedup"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const Table5Row& r : rows) {
    t.add_row({r.application, std::to_string(r.total_instructions),
               std::to_string(r.critical_path), format_fixed(r.estimated_speedup, 2)});
  }
  return t;
}

TextTable make_table6(const std::vector<Table6Column>& columns) {
  TextTable t;
  std::vector<std::string> header{"Tool"};
  for (const Table6Column& c : columns) header.push_back(c.benchmark);
  t.set_header(header);

  std::vector<std::string> sambamba{"Sambamba"};
  std::vector<std::string> icc{"icc"};
  std::vector<std::string> discopop{"DiscoPoP"};
  for (const Table6Column& c : columns) {
    sambamba.push_back(c.sambamba);
    icc.push_back(c.icc);
    discopop.push_back(c.discopop);
  }
  t.add_row(sambamba);
  t.add_row(icc);
  t.add_row(discopop);
  return t;
}

}  // namespace ppd::report
