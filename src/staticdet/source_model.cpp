#include "staticdet/source_model.hpp"

#include <algorithm>

namespace ppd::staticdet {
namespace {

bool is_accumulation(const Stmt& stmt) {
  return stmt.op == Op::AddAssign || stmt.op == Op::MulAssign;
}

/// Does any statement in `body` pass an accumulator into a call (by
/// reference), i.e. is the reduction performed across the call boundary?
bool accumulates_through_call(const std::vector<Stmt>& body) {
  return std::any_of(body.begin(), body.end(),
                     [](const Stmt& s) { return s.op == Op::Call; });
}

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::Detected: return "yes";
    case Verdict::NotDetected: return "no";
    case Verdict::NotApplicable: return "NA";
  }
  return "?";
}

Verdict IccStyleDetector::detect(const LoopModel& loop) const {
  // Conservative static analysis: any call in the body defeats the
  // dependence analysis; so does an accumulator it cannot disambiguate
  // (array elements and pointer-based scalars may alias the inputs).
  if (accumulates_through_call(loop.body)) return Verdict::NotDetected;
  for (const Stmt& stmt : loop.body) {
    if (!is_accumulation(stmt)) continue;
    if (stmt.target == TargetKind::ScalarLocal) return Verdict::Detected;
  }
  return Verdict::NotDetected;
}

Verdict SambambaStyleDetector::detect(const LoopModel& loop) const {
  if (loop.unsupported_by_sambamba) return Verdict::NotApplicable;
  // Intra-procedural but with better alias analysis: scalar and
  // array-element accumulators are both recognized when the accumulation is
  // in the lexical extent of the loop.
  for (const Stmt& stmt : loop.body) {
    if (!is_accumulation(stmt)) continue;
    if (stmt.target == TargetKind::ScalarLocal ||
        stmt.target == TargetKind::ArrayElement ||
        stmt.target == TargetKind::ScalarThrough) {
      return Verdict::Detected;
    }
  }
  // A reduction hidden inside a callee (sum_module) is invisible to an
  // intra-procedural analysis.
  return Verdict::NotDetected;
}

}  // namespace ppd::staticdet
