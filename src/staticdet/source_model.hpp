// Statement-level source model for the static-analysis baselines.
//
// Table VI compares DiscoPoP's dynamic reduction detection with Intel icc
// and Sambamba, which analyze source statically. We do not reimplement
// those compilers; instead we model exactly the documented limitations that
// produce the table (see DESIGN.md, substitution table): icc recognizes
// reductions only in the lexical extent of the loop, on scalar accumulators,
// with no calls in the body and no pointer/array aliasing hazards; Sambamba
// additionally handles array-element accumulators and benign calls but is
// still intra-procedural and cannot process some programs at all (NA). The
// verdicts are then *derived* from each benchmark's statement structure,
// not hard-coded.
#pragma once

#include <string>
#include <vector>

#include "support/ids.hpp"

namespace ppd::staticdet {

/// Statement operation, as a parser would classify it.
enum class Op {
  Assign,     ///< target = expr (no self-reference)
  AddAssign,  ///< target += expr
  MulAssign,  ///< target *= expr
  Call,       ///< function call (possibly with a returned value)
  Other,
};

/// Kind of the written location.
enum class TargetKind {
  None,
  ScalarLocal,    ///< named local scalar
  ScalarThrough,  ///< scalar accessed through a pointer/reference parameter
  ArrayElement,   ///< array element (possibly pointer-based)
};

/// One statement of a loop body (or callee body).
struct Stmt {
  SourceLine line = 0;
  Op op = Op::Other;
  TargetKind target = TargetKind::None;
  std::string target_name;
  std::vector<std::string> reads;
  std::string callee;        ///< non-empty for Op::Call
  bool recursive_call = false;
};

/// A callee reachable from the loop, with its own statements (for the
/// inter-procedural sum_module case).
struct CalleeModel {
  std::string name;
  std::vector<Stmt> body;
};

/// A loop with its body statements, as a static analyzer sees it.
struct LoopModel {
  std::string name;
  std::vector<Stmt> body;
  std::vector<CalleeModel> callees;
  /// The surrounding code uses features the modeled tool's frontend cannot
  /// process at all (Sambamba's NA rows: recursion-driven task structure,
  /// C++ benchmarks its LLVM fork cannot consume).
  bool unsupported_by_sambamba = false;
};

/// Verdict of a (modeled or real) detector on one benchmark.
enum class Verdict { Detected, NotDetected, NotApplicable };

[[nodiscard]] const char* to_string(Verdict verdict);

/// Interface shared by the modeled static baselines.
class StaticReductionDetector {
 public:
  virtual ~StaticReductionDetector() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual Verdict detect(const LoopModel& loop) const = 0;
};

/// Intel-icc-style detector: reduction statement must be lexically inside
/// the loop, accumulate into a scalar (pointer/array targets defeat the
/// alias analysis), and the body must be call-free.
class IccStyleDetector final : public StaticReductionDetector {
 public:
  [[nodiscard]] const char* name() const override { return "icc"; }
  [[nodiscard]] Verdict detect(const LoopModel& loop) const override;
};

/// Sambamba-style detector: static whole-function analysis. Handles scalar
/// and array-element accumulators and tolerates calls that do not carry the
/// accumulator; still intra-procedural (a reduction hidden in a callee is
/// missed) and NA on programs its frontend cannot process.
class SambambaStyleDetector final : public StaticReductionDetector {
 public:
  [[nodiscard]] const char* name() const override { return "Sambamba"; }
  [[nodiscard]] Verdict detect(const LoopModel& loop) const override;
};

}  // namespace ppd::staticdet
