// Stream-invariant validator.
//
// An EventSink that re-checks, event by event, the well-formedness contract
// every downstream analysis (profiler, PET builder, CU builder) assumes:
// region enters/exits are properly nested, iterations only occur inside
// their innermost loop and count up from zero, statement scopes are
// balanced, every event references defined ids, costs stay within a sanity
// cap, and write update-ops are from the known set. Subscribing a Validator
// next to the analyses turns "garbage in, garbage out" into an explicit,
// attributable violation report — the graph-labelling literature
// (Telegin et al., arXiv:2212.04818) assumes validated input graphs; this
// is where that guarantee is established.
//
// Violations are collected as Diags (and optionally forwarded to a
// DiagSink); the first one is also available as a Status. The validator
// never throws and never aborts — it observes.
#pragma once

#include <cstdint>
#include <vector>

#include "support/status.hpp"
#include "trace/events.hpp"

namespace ppd::trace {

class Validator final : public EventSink {
 public:
  /// `sink` (optional) additionally receives every violation as a Diag.
  explicit Validator(support::DiagSink* sink = nullptr) : sink_(sink) {}

  void on_region_enter(const RegionInfo& region) override;
  void on_region_exit(const RegionInfo& region) override;
  void on_iteration(const RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const AccessEvent& access) override;
  void on_compute(const ComputeEvent& compute) override;
  void on_statement_enter(const StatementInfo& stmt) override;
  void on_statement_exit(const StatementInfo& stmt) override;
  void on_trace_end() override;

  [[nodiscard]] bool ok() const { return violations_ == 0; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

  /// Ok, or the first violation observed.
  [[nodiscard]] const support::Status& status() const { return first_; }

  /// Costs above this are treated as corrupt (e.g. a negative value wrapped
  /// through an unsigned parse); no real kernel gets anywhere near it.
  static constexpr Cost kCostSanityCap = Cost{1} << 56;

 private:
  void violation(support::ErrorCode code, std::string message);

  struct OpenRegion {
    RegionId id;
    RegionKind kind;
    std::uint64_t next_iteration = 0;
  };

  support::DiagSink* sink_;
  std::vector<OpenRegion> regions_;
  std::vector<StatementId> statements_;
  std::uint64_t violations_ = 0;
  std::uint64_t events_ = 0;  ///< event ordinal, reported with each violation
  support::Status first_;
  bool ended_ = false;
};

}  // namespace ppd::trace
