#include "trace/validator.hpp"

#include <string>

namespace ppd::trace {

using support::ErrorCode;
using support::Status;

void Validator::violation(ErrorCode code, std::string message) {
  ++violations_;
  message += " (event ";
  message += std::to_string(events_);
  message += ')';
  if (first_.is_ok()) first_ = Status::error(code, message);
  if (sink_ != nullptr) sink_->report(support::Diag{code, 0, std::move(message)});
}

void Validator::on_region_enter(const RegionInfo& region) {
  ++events_;
  if (!region.id.valid()) {
    violation(ErrorCode::UndefinedId, "region enter with invalid id");
    return;
  }
  if (ended_) violation(ErrorCode::ScopeMismatch, "region enter after trace end");
  regions_.push_back(OpenRegion{region.id, region.kind, 0});
}

void Validator::on_region_exit(const RegionInfo& region) {
  ++events_;
  if (regions_.empty() || regions_.back().id != region.id) {
    violation(ErrorCode::ScopeMismatch,
              "exit of region '" + region.name + "' does not match the innermost enter");
    return;
  }
  regions_.pop_back();
}

void Validator::on_iteration(const RegionInfo& loop, std::uint64_t iteration) {
  ++events_;
  if (regions_.empty() || regions_.back().id != loop.id ||
      regions_.back().kind != RegionKind::Loop) {
    violation(ErrorCode::IterationOutsideLoop,
              "iteration of '" + loop.name + "' outside its innermost loop scope");
    return;
  }
  if (iteration != regions_.back().next_iteration) {
    violation(ErrorCode::MalformedRecord,
              "non-sequential iteration number in loop '" + loop.name + "': expected " +
                  std::to_string(regions_.back().next_iteration) + ", got " +
                  std::to_string(iteration));
  }
  regions_.back().next_iteration = iteration + 1;
}

void Validator::on_access(const AccessEvent& access) {
  ++events_;
  if (!access.var.valid()) {
    violation(ErrorCode::UndefinedId, "access references an undefined variable id");
  }
  if (access.cost > kCostSanityCap) {
    violation(ErrorCode::MalformedRecord,
              "access cost " + std::to_string(access.cost) + " exceeds the sanity cap");
  }
  if (access.kind == AccessKind::Read && access.op != UpdateOp::None) {
    violation(ErrorCode::BadWriteOp, "read event carries a write update-op");
  }
  if (access.op > UpdateOp::Max) {
    violation(ErrorCode::BadWriteOp, "write carries an unknown update-op code");
  }
  if (!regions_.empty() && access.region != regions_.back().id) {
    violation(ErrorCode::ScopeMismatch,
              "access attributed to a region other than the innermost open one");
  }
}

void Validator::on_compute(const ComputeEvent& compute) {
  ++events_;
  if (compute.cost > kCostSanityCap) {
    violation(ErrorCode::MalformedRecord,
              "compute cost " + std::to_string(compute.cost) + " exceeds the sanity cap");
  }
  if (!regions_.empty() && compute.region != regions_.back().id) {
    violation(ErrorCode::ScopeMismatch,
              "compute attributed to a region other than the innermost open one");
  }
}

void Validator::on_statement_enter(const StatementInfo& stmt) {
  ++events_;
  if (!stmt.id.valid()) {
    violation(ErrorCode::UndefinedId, "statement enter with invalid id");
    return;
  }
  statements_.push_back(stmt.id);
}

void Validator::on_statement_exit(const StatementInfo& stmt) {
  ++events_;
  if (statements_.empty() || statements_.back() != stmt.id) {
    violation(ErrorCode::ScopeMismatch,
              "close of statement '" + stmt.name + "' does not match the innermost open one");
    return;
  }
  statements_.pop_back();
}

void Validator::on_trace_end() {
  ++events_;
  if (!regions_.empty() || !statements_.empty()) {
    violation(ErrorCode::UnclosedScope,
              "trace ended with " + std::to_string(regions_.size()) + " region and " +
                  std::to_string(statements_.size()) + " statement scope(s) open");
  }
  ended_ = true;
}

}  // namespace ppd::trace
