// Trace serialization and replay.
//
// The paper's instrumented programs dump "all the recorded information
// about the iteration numbers and memory addresses into an output file"
// whose post-analysis drives the detectors (§III-A). This module provides
// that decoupling: TraceWriter records the full event stream (plus the
// static region/variable/statement definitions it references) into a
// line-oriented text format, and replay_trace() re-drives a fresh
// TraceContext from such a file, so any combination of analyses can run
// long after the profiled execution — including analyses that did not exist
// when the trace was taken.
//
// Replay is the trust boundary of the whole pipeline: traces come from
// arbitrary instrumented runs, so every record is validated before it is
// dispatched. Two modes are offered (ReplayMode): *strict* stops at the
// first violation with a Status naming the offending line; *lenient*
// drops unparseable or inconsistent records (resyncing at the next line),
// repairs unbalanced region/statement scopes at end of input, collects a
// Diag per problem, and still completes a degraded analysis. Both modes
// enforce configurable resource caps so hostile inputs fail gracefully
// instead of exhausting memory.
//
// Format (one record per line, space-separated; names must not contain
// whitespace):
//
//   ppd-trace 1                  header
//   var <id> <local> <name>      variable definition (on first use)
//   fn|lp <id> <line> <name>     region definition (on first entry)
//   st <id> <line> <name>        statement definition (on first entry)
//   E <region>  /  X <region>    region enter / exit
//   I <loop>                     begin_iteration of the innermost loop
//   S <stmt>  /  P <stmt>        statement scope open / close
//   R <var> <index> <line> <cost>            read
//   W <var> <index> <line> <cost> <op>       write (op: 0=none 1=+ 2=* 3=min 4=max)
//   C <line> <cost>              compute
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "support/status.hpp"
#include "trace/context.hpp"
#include "trace/events.hpp"

namespace ppd::trace {

/// Event sink streaming the trace to `out`. Definitions are emitted lazily
/// before the first record that references them.
class TraceWriter final : public EventSink {
 public:
  TraceWriter(const TraceContext& program, std::ostream& out);

  void on_region_enter(const RegionInfo& region) override;
  void on_region_exit(const RegionInfo& region) override;
  void on_iteration(const RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const AccessEvent& access) override;
  void on_compute(const ComputeEvent& compute) override;
  void on_statement_enter(const StatementInfo& stmt) override;
  void on_statement_exit(const StatementInfo& stmt) override;
  void on_trace_end() override;

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  void ensure_var(VarId var);
  void ensure_region(const RegionInfo& region);
  void ensure_statement(const StatementInfo& stmt);

  const TraceContext& program_;
  std::ostream& out_;
  std::vector<bool> var_defined_;
  std::vector<bool> region_defined_;
  std::vector<bool> stmt_defined_;
  std::uint64_t records_ = 0;
};

/// How replay reacts to a bad record.
enum class ReplayMode {
  /// Stop at the first violation; ReplayResult.status names the line.
  Strict,
  /// Drop bad records (resync at the next line), repair unbalanced scopes
  /// at end of input, collect a Diag per problem, and finish the analysis.
  Lenient,
};

/// Resource caps enforced in both modes; exceeding one yields a
/// resource-limit Status instead of unbounded memory growth.
struct ReplayLimits {
  std::uint64_t max_records = std::uint64_t{1} << 32;      ///< dispatched events
  std::uint64_t max_definitions = std::uint64_t{1} << 24;  ///< var+region+stmt defs
  std::uint64_t max_line_length = std::uint64_t{1} << 20;  ///< bytes per record
};

struct ReplayOptions {
  ReplayMode mode = ReplayMode::Strict;
  ReplayLimits limits;
  /// Optional collector for non-fatal findings (lenient drops/repairs).
  support::DiagSink* diags = nullptr;
};

/// Outcome of a replay. `status` is Ok when the trace was ingested to the
/// end (possibly degraded, in lenient mode); on error it carries the code
/// and the 1-based line of the offending record.
struct ReplayResult {
  support::Status status;
  std::uint64_t records = 0;          ///< events successfully dispatched
  std::uint64_t dropped = 0;          ///< lenient: records dropped
  std::uint64_t repaired_scopes = 0;  ///< lenient: scopes auto-closed at EOF
  bool finished = false;              ///< ctx.finish() was reached
};

/// Replays a serialized trace into `ctx` (whose sinks must already be
/// subscribed): regions, variables, and statements are re-interned and every
/// recorded event re-dispatched in order; finish() is called at the end of a
/// successful (or successfully repaired) replay. Never throws on malformed
/// input — problems are reported through the returned ReplayResult.
[[nodiscard]] ReplayResult replay_trace(std::istream& in, TraceContext& ctx,
                                        const ReplayOptions& options);

/// Legacy strict replay: returns the number of records replayed, throwing
/// std::runtime_error (with the Status text) on malformed input.
std::uint64_t replay_trace(std::istream& in, TraceContext& ctx);

}  // namespace ppd::trace
