// TraceContext: the instrumentation runtime.
//
// This module substitutes for the paper's LLVM instrumentation pass (see
// DESIGN.md): benchmark kernels are hand-instrumented with RAII region
// scopes and read()/write() hooks, producing exactly the event stream the
// pass would produce — addresses, source lines, loop iteration vectors, and
// abstract costs. Static program structure (regions, variables, statements)
// is registered on first use and queryable afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/ids.hpp"
#include "trace/events.hpp"

namespace ppd::trace {

class FunctionScope;
class LoopScope;
class StatementScope;

/// Central instrumentation context. One per traced execution. Not
/// thread-safe: the paper profiles *sequential* applications.
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Subscribes an analysis; the pointer must stay valid for the lifetime of
  /// the traced execution.
  void add_sink(EventSink* sink);

  // ---- static program structure -------------------------------------------

  /// Registers (or retrieves) a named variable.
  [[nodiscard]] VarId var(std::string_view name);

  /// Registers (or retrieves) a named *local temporary*. Locals carry no
  /// program state of their own: CU formation uses them only to glue
  /// statements together (Fig. 1 of the paper).
  [[nodiscard]] VarId local_var(std::string_view name);

  /// Synthetic element address of `var[index]`. Addresses are element-
  /// granular and unique per (variable, index).
  [[nodiscard]] static Address addr(VarId var, std::uint64_t index) {
    return (static_cast<Address>(var.value()) << kIndexBits) | (index & kIndexMask);
  }

  /// Recovers the variable a synthetic address belongs to.
  [[nodiscard]] static VarId addr_var(Address address) {
    return VarId(static_cast<VarId::rep_type>(address >> kIndexBits));
  }

  /// Recovers the element index of a synthetic address.
  [[nodiscard]] static std::uint64_t addr_index(Address address) {
    return address & kIndexMask;
  }

  [[nodiscard]] const std::vector<RegionInfo>& regions() const { return regions_; }
  [[nodiscard]] const std::vector<VarInfo>& vars() const { return vars_; }
  [[nodiscard]] const std::vector<StatementInfo>& statements() const { return statements_; }

  [[nodiscard]] const RegionInfo& region(RegionId id) const { return regions_.at(id.value()); }
  [[nodiscard]] const VarInfo& var_info(VarId id) const { return vars_.at(id.value()); }
  [[nodiscard]] const StatementInfo& statement(StatementId id) const {
    return statements_.at(id.value());
  }

  /// Looks up a region by name; returns RegionId::invalid() if absent.
  [[nodiscard]] RegionId find_region(std::string_view name) const;

  /// Looks up a variable by name; returns VarId::invalid() if absent.
  [[nodiscard]] VarId find_var(std::string_view name) const;

  // ---- dynamic events -------------------------------------------------------

  /// Instrumented load of `var[index]`.
  void read(VarId v, std::uint64_t index, SourceLine line, Cost cost = 1);

  /// Internal shared implementation of write()/update().
  void write_impl(VarId v, std::uint64_t index, SourceLine line, Cost cost, UpdateOp op);

  /// Instrumented store to `var[index]`.
  void write(VarId v, std::uint64_t index, SourceLine line, Cost cost = 1);

  /// Instrumented self-update `var[index] op= expr`: emits the read and the
  /// tagged write of the accumulator in one call.
  void update(VarId v, std::uint64_t index, SourceLine line, UpdateOp op, Cost cost = 1);

  /// Attributes pure computation work (the arithmetic between instrumented
  /// loads and stores) to the current statement/region.
  void compute(SourceLine line, Cost cost);

  /// Marks the end of the traced execution and finalizes all sinks. Called
  /// automatically at most once; safe to call explicitly.
  void finish();

  /// Total cost observed across the whole execution.
  [[nodiscard]] Cost total_cost() const { return total_cost_; }

  /// Number of events emitted so far (sequence counter).
  [[nodiscard]] std::uint64_t sequence() const { return seq_; }

 private:
  friend class FunctionScope;
  friend class LoopScope;
  friend class StatementScope;

  static constexpr unsigned kIndexBits = 40;
  static constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kIndexBits) - 1;

  RegionId intern_region(RegionKind kind, std::string_view name, SourceLine line);
  StatementId intern_statement(std::string_view name, SourceLine line);

  void enter_region(RegionId id);
  void exit_region(RegionId id);
  void begin_iteration(RegionId loop);

  [[nodiscard]] RegionId current_region() const {
    return region_stack_.empty() ? RegionId::invalid() : region_stack_.back();
  }

  /// The innermost statement scope, but only if it is lexically in the
  /// current region: accesses inside a callee do not belong to the caller's
  /// call statement.
  [[nodiscard]] StatementId current_statement() const {
    if (statement_stack_.empty()) return StatementId::invalid();
    const StatementId s = statement_stack_.back();
    return statements_[s.value()].region == current_region() ? s : StatementId::invalid();
  }

  struct ActiveLoop {
    RegionId loop;
    std::uint64_t next_iteration = 0;  ///< iteration index assigned at next begin_iteration
    bool iterating = false;            ///< true once the first iteration began
  };

  std::vector<EventSink*> sinks_;

  std::vector<RegionInfo> regions_;
  std::unordered_map<std::string, RegionId> region_by_key_;
  std::vector<VarInfo> vars_;
  std::unordered_map<std::string, VarId> var_by_name_;
  std::vector<StatementInfo> statements_;
  std::unordered_map<std::string, StatementId> statement_by_key_;

  std::vector<RegionId> region_stack_;
  std::vector<std::uint32_t> function_depth_;  ///< per function region: active activations
  std::vector<std::uint64_t> activation_count_;  ///< per function region: total entries
  std::vector<std::pair<RegionId, std::uint64_t>> function_stack_;  ///< (func, activation)
  std::vector<ActiveLoop> loop_stack_;
  std::vector<LoopPosition> loop_positions_;  ///< parallel to loop_stack_, for event spans
  std::vector<StatementId> statement_stack_;

  std::uint64_t seq_ = 0;
  Cost total_cost_ = 0;
  bool finished_ = false;
};

/// RAII scope for an instrumented function region.
class FunctionScope {
 public:
  FunctionScope(TraceContext& ctx, std::string_view name, SourceLine line);
  ~FunctionScope();
  FunctionScope(const FunctionScope&) = delete;
  FunctionScope& operator=(const FunctionScope&) = delete;

  [[nodiscard]] RegionId id() const { return id_; }

 private:
  TraceContext& ctx_;
  RegionId id_;
};

/// RAII scope for an instrumented loop region. Call begin_iteration() at the
/// top of every executed loop-body pass.
class LoopScope {
 public:
  LoopScope(TraceContext& ctx, std::string_view name, SourceLine line);
  ~LoopScope();
  LoopScope(const LoopScope&) = delete;
  LoopScope& operator=(const LoopScope&) = delete;

  /// Starts the next iteration of this loop (0-based numbering).
  void begin_iteration();

  [[nodiscard]] RegionId id() const { return id_; }

 private:
  TraceContext& ctx_;
  RegionId id_;
};

/// RAII scope marking one read-compute-write statement instance. Accesses
/// performed inside the scope are attributed to this statement; statements
/// are the seeds of CU formation (ppd::cu).
class StatementScope {
 public:
  StatementScope(TraceContext& ctx, std::string_view name, SourceLine line);
  ~StatementScope();
  StatementScope(const StatementScope&) = delete;
  StatementScope& operator=(const StatementScope&) = delete;

  [[nodiscard]] StatementId id() const { return id_; }

 private:
  TraceContext& ctx_;
  StatementId id_;
};

}  // namespace ppd::trace
