// Dynamic event model produced by the instrumentation runtime.
//
// This is the stream the paper's LLVM pass emits at run time: region
// enter/exit for functions and loops, loop-iteration advances, and
// instrumented memory accesses carrying their source line, the enclosing
// loop-iteration vector, and an abstract cost (the IR-instruction-count
// stand-in). All profiling analyses (dependence profiler, PET builder,
// CU builder) are observers of this stream.
#pragma once

#include <span>
#include <string>

#include "support/ids.hpp"

namespace ppd::trace {

/// Control-region kind; the paper uses functions and loops as the control
/// regions of the Program Execution Tree.
enum class RegionKind { Function, Loop };

/// Memory access direction.
enum class AccessKind { Read, Write };

/// Operation tag a write may carry when it is a self-update of the written
/// location (x op= expr). The profiler propagates the tag into reduction
/// candidates, inferring the reduction operator — the paper lists this as
/// future work (§VI).
enum class UpdateOp : std::uint8_t { None, Sum, Product, Min, Max };

[[nodiscard]] const char* to_string(UpdateOp op);

/// Static description of a control region (one per source-level region;
/// dynamic instances, loop iterations, and recursive activations all map to
/// the same RegionId).
struct RegionInfo {
  RegionId id;
  RegionKind kind = RegionKind::Function;
  std::string name;
  SourceLine line = 0;
  /// Set when a function region was entered while already active
  /// (the PET marks such nodes explicitly as recursive).
  bool recursive = false;
};

/// Static description of a named program variable (scalar or array).
struct VarInfo {
  VarId id;
  std::string name;
  /// Local temporaries are ignored as program state during CU formation
  /// (the paper's Fig. 1: locals `a` and `b` only glue lines into a CU).
  bool local = false;
};

/// Static description of a statement: one read-compute-write site. CUs are
/// formed from statements (see ppd::cu).
struct StatementInfo {
  StatementId id;
  RegionId region;  ///< innermost region the statement is lexically in
  std::string name;
  SourceLine line = 0;
};

/// Position within one enclosing loop: which loop, and the 0-based index of
/// the iteration currently executing.
struct LoopPosition {
  RegionId loop;
  std::uint64_t iteration = 0;

  friend bool operator==(const LoopPosition&, const LoopPosition&) = default;
};

/// One instrumented memory access, as observed dynamically.
struct AccessEvent {
  AccessKind kind = AccessKind::Read;
  Address addr = 0;
  VarId var;
  SourceLine line = 0;
  Cost cost = 1;
  UpdateOp op = UpdateOp::None;  ///< self-update operation, writes only
  StatementId stmt;                          ///< enclosing statement scope, if any
  RegionId region;                           ///< innermost enclosing region
  RegionId func;                             ///< innermost enclosing *function* region
  /// Dynamic activation number of `func` (counts its entries). Recursive
  /// activations of a merged function are distinguished by this: a value
  /// returned from a recursive call produces a dependence between different
  /// activations, which must not appear as an edge in the per-activation CU
  /// graph (Fig. 3 shows one activation of cilksort).
  std::uint64_t func_activation = 0;
  std::span<const LoopPosition> loop_stack;  ///< outermost-first enclosing loops
  std::uint64_t seq = 0;                     ///< global program-order sequence number
};

/// Pure computation work attributed to a line/statement (arithmetic between
/// the instrumented loads and stores).
struct ComputeEvent {
  SourceLine line = 0;
  Cost cost = 0;
  StatementId stmt;
  RegionId region;
};

/// Observer interface over the dynamic event stream. Analyses subscribe to a
/// TraceContext and maintain whatever state they need; events arrive in
/// program order.
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void on_region_enter(const RegionInfo& /*region*/) {}
  virtual void on_region_exit(const RegionInfo& /*region*/) {}
  /// A new iteration of `loop` begins; `iteration` is 0-based within the
  /// current dynamic loop instance.
  virtual void on_iteration(const RegionInfo& /*loop*/, std::uint64_t /*iteration*/) {}
  virtual void on_access(const AccessEvent& /*access*/) {}
  virtual void on_compute(const ComputeEvent& /*compute*/) {}
  /// A read-compute-write statement scope opens/closes (used by the trace
  /// serializer; the analyses read the statement id off each access).
  virtual void on_statement_enter(const StatementInfo& /*stmt*/) {}
  virtual void on_statement_exit(const StatementInfo& /*stmt*/) {}
  /// The traced execution finished; analyses may finalize.
  virtual void on_trace_end() {}
};

}  // namespace ppd::trace
