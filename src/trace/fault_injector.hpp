// Deterministic trace-mutation harness.
//
// Robustness of the ingestion boundary is proven, not assumed: the fault
// injector takes a well-formed serialized trace and applies one of a fixed
// set of corruption patterns — truncation, dropped exits, duplicated
// records, corrupted ids/fields, interleaved garbage, bit flips — chosen
// and parameterized by a seeded deterministic PRNG, so every failure found
// by the fuzz-style suite reproduces from its (benchmark, fault, seed)
// triple alone. The suite asserts that replaying any mutant never crashes:
// strict mode returns a precise Status, lenient mode completes a degraded
// analysis and accounts for every dropped record.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ppd::trace {

class FaultInjector {
 public:
  /// Corruption patterns. Keep kCount_ last.
  enum class Fault : std::uint8_t {
    TruncateTail,     ///< cut the trace at an arbitrary byte offset
    TruncateMidLine,  ///< cut inside a record, dropping the rest of the file
    DropRecord,       ///< remove one random record line
    DropExit,         ///< remove one region/statement exit (unbalances scopes)
    DuplicateRecord,  ///< repeat one record line in place
    CorruptId,        ///< replace a numeric field with an out-of-range id
    CorruptField,     ///< replace a token with a non-numeric/negative value
    GarbageLine,      ///< interleave a line of binary garbage
    BitFlip,          ///< flip one bit of one byte
    SwapAdjacent,     ///< swap two adjacent lines (reorders the stream)
    // Byte-level faults aimed at the binary .ppdt container (they corrupt
    // text traces too, just less surgically).
    ChunkTruncate,    ///< cut the byte stream mid-chunk (torn write)
    CrcCorrupt,       ///< xor one payload byte, invalidating a section CRC
    FooterDamage,     ///< mutate a byte in the trailer/footer region
    kCount_,
  };

  [[nodiscard]] static const char* to_string(Fault fault);

  /// Same seed + same input + same fault => same mutant.
  explicit FaultInjector(std::uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}

  /// Applies `fault` once to `trace` and returns the mutated text.
  [[nodiscard]] std::string apply(std::string_view trace, Fault fault);

  /// Applies a fault chosen by the PRNG.
  [[nodiscard]] std::string apply_random(std::string_view trace);

 private:
  [[nodiscard]] std::uint64_t next();
  /// Uniform value in [0, bound); bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  std::uint64_t state_;
};

}  // namespace ppd::trace
