#include "trace/context.hpp"

#include "support/assert.hpp"

namespace ppd::trace {

void TraceContext::add_sink(EventSink* sink) {
  PPD_ASSERT(sink != nullptr);
  sinks_.push_back(sink);
}

VarId TraceContext::var(std::string_view name) {
  auto it = var_by_name_.find(std::string(name));
  if (it != var_by_name_.end()) return it->second;
  const VarId id(static_cast<VarId::rep_type>(vars_.size()));
  vars_.push_back(VarInfo{id, std::string(name), /*local=*/false});
  var_by_name_.emplace(std::string(name), id);
  return id;
}

VarId TraceContext::local_var(std::string_view name) {
  const VarId id = var(name);
  vars_[id.value()].local = true;
  return id;
}

RegionId TraceContext::find_region(std::string_view name) const {
  for (const RegionInfo& r : regions_) {
    if (r.name == name) return r.id;
  }
  return RegionId::invalid();
}

VarId TraceContext::find_var(std::string_view name) const {
  auto it = var_by_name_.find(std::string(name));
  return it == var_by_name_.end() ? VarId::invalid() : it->second;
}

RegionId TraceContext::intern_region(RegionKind kind, std::string_view name,
                                     SourceLine line) {
  // Static regions are keyed by kind+name: all dynamic instances of the same
  // source-level region share one id (the PET merges iterations and
  // recursive activations into one node per static region).
  std::string key = (kind == RegionKind::Function ? "f:" : "l:") + std::string(name);
  auto it = region_by_key_.find(key);
  if (it != region_by_key_.end()) return it->second;
  const RegionId id(static_cast<RegionId::rep_type>(regions_.size()));
  regions_.push_back(RegionInfo{id, kind, std::string(name), line, /*recursive=*/false});
  function_depth_.push_back(0);
  activation_count_.push_back(0);
  region_by_key_.emplace(std::move(key), id);
  return id;
}

StatementId TraceContext::intern_statement(std::string_view name, SourceLine line) {
  const RegionId region = current_region();
  std::string key = std::to_string(region.valid() ? region.value() : ~0u);
  key += ':';
  key += name;
  auto it = statement_by_key_.find(key);
  if (it != statement_by_key_.end()) return it->second;
  const StatementId id(static_cast<StatementId::rep_type>(statements_.size()));
  statements_.push_back(StatementInfo{id, region, std::string(name), line});
  statement_by_key_.emplace(std::move(key), id);
  return id;
}

void TraceContext::enter_region(RegionId id) {
  PPD_ASSERT(!finished_);
  RegionInfo& info = regions_.at(id.value());
  if (info.kind == RegionKind::Function) {
    // A function entered while already active is a recursive activation;
    // the PET marks the merged node explicitly as recursive.
    if (function_depth_[id.value()] > 0) info.recursive = true;
    ++function_depth_[id.value()];
    ++activation_count_[id.value()];
    function_stack_.emplace_back(id, activation_count_[id.value()]);
  } else {
    loop_stack_.push_back(ActiveLoop{id, 0, false});
    loop_positions_.push_back(LoopPosition{id, 0});
  }
  region_stack_.push_back(id);
  ++seq_;
  for (EventSink* sink : sinks_) sink->on_region_enter(info);
}

void TraceContext::exit_region(RegionId id) {
  PPD_ASSERT_MSG(!region_stack_.empty() && region_stack_.back() == id,
                 "region exit does not match innermost entered region");
  region_stack_.pop_back();
  RegionInfo& info = regions_.at(id.value());
  if (info.kind == RegionKind::Function) {
    PPD_ASSERT(function_depth_[id.value()] > 0);
    --function_depth_[id.value()];
    PPD_ASSERT(!function_stack_.empty() && function_stack_.back().first == id);
    function_stack_.pop_back();
  } else {
    PPD_ASSERT(!loop_stack_.empty() && loop_stack_.back().loop == id);
    loop_stack_.pop_back();
    loop_positions_.pop_back();
  }
  ++seq_;
  for (EventSink* sink : sinks_) sink->on_region_exit(info);
}

void TraceContext::begin_iteration(RegionId loop) {
  PPD_ASSERT_MSG(!loop_stack_.empty() && loop_stack_.back().loop == loop,
                 "begin_iteration outside the innermost loop scope");
  ActiveLoop& active = loop_stack_.back();
  const std::uint64_t iteration = active.next_iteration++;
  active.iterating = true;
  loop_positions_.back().iteration = iteration;
  ++seq_;
  const RegionInfo& info = regions_.at(loop.value());
  for (EventSink* sink : sinks_) sink->on_iteration(info, iteration);
}

void TraceContext::read(VarId v, std::uint64_t index, SourceLine line, Cost cost) {
  AccessEvent ev;
  ev.kind = AccessKind::Read;
  ev.addr = addr(v, index);
  ev.var = v;
  ev.line = line;
  ev.cost = cost;
  ev.stmt = current_statement();
  ev.region = current_region();
  if (!function_stack_.empty()) {
    ev.func = function_stack_.back().first;
    ev.func_activation = function_stack_.back().second;
  }
  ev.loop_stack = loop_positions_;
  ev.seq = ++seq_;
  total_cost_ += cost;
  for (EventSink* sink : sinks_) sink->on_access(ev);
}

const char* to_string(UpdateOp op) {
  switch (op) {
    case UpdateOp::None: return "none";
    case UpdateOp::Sum: return "+";
    case UpdateOp::Product: return "*";
    case UpdateOp::Min: return "min";
    case UpdateOp::Max: return "max";
  }
  return "?";
}

void TraceContext::write(VarId v, std::uint64_t index, SourceLine line, Cost cost) {
  write_impl(v, index, line, cost, UpdateOp::None);
}

void TraceContext::update(VarId v, std::uint64_t index, SourceLine line, UpdateOp op,
                          Cost cost) {
  read(v, index, line, cost);
  write_impl(v, index, line, cost, op);
}

void TraceContext::write_impl(VarId v, std::uint64_t index, SourceLine line, Cost cost,
                              UpdateOp op) {
  AccessEvent ev;
  ev.kind = AccessKind::Write;
  ev.op = op;
  ev.addr = addr(v, index);
  ev.var = v;
  ev.line = line;
  ev.cost = cost;
  ev.stmt = current_statement();
  ev.region = current_region();
  if (!function_stack_.empty()) {
    ev.func = function_stack_.back().first;
    ev.func_activation = function_stack_.back().second;
  }
  ev.loop_stack = loop_positions_;
  ev.seq = ++seq_;
  total_cost_ += cost;
  for (EventSink* sink : sinks_) sink->on_access(ev);
}

void TraceContext::compute(SourceLine line, Cost cost) {
  ComputeEvent ev;
  ev.line = line;
  ev.cost = cost;
  ev.stmt = current_statement();
  ev.region = current_region();
  total_cost_ += cost;
  ++seq_;
  for (EventSink* sink : sinks_) sink->on_compute(ev);
}

void TraceContext::finish() {
  if (finished_) return;
  PPD_ASSERT_MSG(region_stack_.empty(), "finish() with regions still active");
  finished_ = true;
  for (EventSink* sink : sinks_) sink->on_trace_end();
}

FunctionScope::FunctionScope(TraceContext& ctx, std::string_view name, SourceLine line)
    : ctx_(ctx), id_(ctx.intern_region(RegionKind::Function, name, line)) {
  ctx_.enter_region(id_);
}

FunctionScope::~FunctionScope() { ctx_.exit_region(id_); }

LoopScope::LoopScope(TraceContext& ctx, std::string_view name, SourceLine line)
    : ctx_(ctx), id_(ctx.intern_region(RegionKind::Loop, name, line)) {
  ctx_.enter_region(id_);
}

LoopScope::~LoopScope() { ctx_.exit_region(id_); }

void LoopScope::begin_iteration() { ctx_.begin_iteration(id_); }

StatementScope::StatementScope(TraceContext& ctx, std::string_view name, SourceLine line)
    : ctx_(ctx), id_(ctx.intern_statement(name, line)) {
  ctx_.statement_stack_.push_back(id_);
  for (EventSink* sink : ctx_.sinks_) sink->on_statement_enter(ctx_.statement(id_));
}

StatementScope::~StatementScope() {
  PPD_ASSERT(!ctx_.statement_stack_.empty() && ctx_.statement_stack_.back() == id_);
  ctx_.statement_stack_.pop_back();
  for (EventSink* sink : ctx_.sinks_) sink->on_statement_exit(ctx_.statement(id_));
}

}  // namespace ppd::trace
