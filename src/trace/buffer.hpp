// TraceBuffer: an EventSink that records the full event stream.
//
// Used by tests and by the example programs to inspect traces; the real
// analyses consume events online instead of buffering them.
#pragma once

#include <vector>

#include "trace/events.hpp"

namespace ppd::trace {

/// A recorded access with the loop stack copied out of the transient event.
struct RecordedAccess {
  AccessKind kind = AccessKind::Read;
  Address addr = 0;
  VarId var;
  SourceLine line = 0;
  Cost cost = 1;
  StatementId stmt;
  RegionId region;
  std::vector<LoopPosition> loop_stack;
  std::uint64_t seq = 0;
};

/// Records every event for later inspection.
class TraceBuffer final : public EventSink {
 public:
  void on_region_enter(const RegionInfo& region) override { enters_.push_back(region.id); }
  void on_region_exit(const RegionInfo& region) override { exits_.push_back(region.id); }
  void on_iteration(const RegionInfo& loop, std::uint64_t iteration) override {
    iterations_.emplace_back(loop.id, iteration);
  }
  void on_access(const AccessEvent& access) override {
    RecordedAccess rec;
    rec.kind = access.kind;
    rec.addr = access.addr;
    rec.var = access.var;
    rec.line = access.line;
    rec.cost = access.cost;
    rec.stmt = access.stmt;
    rec.region = access.region;
    rec.loop_stack.assign(access.loop_stack.begin(), access.loop_stack.end());
    rec.seq = access.seq;
    accesses_.push_back(std::move(rec));
  }
  void on_trace_end() override { ended_ = true; }

  [[nodiscard]] const std::vector<RegionId>& enters() const { return enters_; }
  [[nodiscard]] const std::vector<RegionId>& exits() const { return exits_; }
  [[nodiscard]] const std::vector<std::pair<RegionId, std::uint64_t>>& iterations() const {
    return iterations_;
  }
  [[nodiscard]] const std::vector<RecordedAccess>& accesses() const { return accesses_; }
  [[nodiscard]] bool ended() const { return ended_; }

 private:
  std::vector<RegionId> enters_;
  std::vector<RegionId> exits_;
  std::vector<std::pair<RegionId, std::uint64_t>> iterations_;
  std::vector<RecordedAccess> accesses_;
  bool ended_ = false;
};

}  // namespace ppd::trace
