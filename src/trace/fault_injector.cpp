#include "trace/fault_injector.hpp"

#include <vector>

namespace ppd::trace {
namespace {

/// Splits into lines without their terminators; a trailing fragment with no
/// newline is kept as a line of its own.
std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      if (begin < text.size()) lines.emplace_back(text.substr(begin));
      break;
    }
    lines.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

const char* FaultInjector::to_string(Fault fault) {
  switch (fault) {
    case Fault::TruncateTail: return "truncate-tail";
    case Fault::TruncateMidLine: return "truncate-mid-line";
    case Fault::DropRecord: return "drop-record";
    case Fault::DropExit: return "drop-exit";
    case Fault::DuplicateRecord: return "duplicate-record";
    case Fault::CorruptId: return "corrupt-id";
    case Fault::CorruptField: return "corrupt-field";
    case Fault::GarbageLine: return "garbage-line";
    case Fault::BitFlip: return "bit-flip";
    case Fault::SwapAdjacent: return "swap-adjacent";
    case Fault::ChunkTruncate: return "chunk-truncate";
    case Fault::CrcCorrupt: return "crc-corrupt";
    case Fault::FooterDamage: return "footer-damage";
    case Fault::kCount_: break;
  }
  return "unknown-fault";
}

std::uint64_t FaultInjector::next() {
  // splitmix64: tiny, deterministic, and good enough for fault placement.
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t FaultInjector::next_below(std::uint64_t bound) {
  return bound == 0 ? 0 : next() % bound;
}

std::string FaultInjector::apply_random(std::string_view trace) {
  const auto pick =
      static_cast<Fault>(next_below(static_cast<std::uint64_t>(Fault::kCount_)));
  return apply(trace, pick);
}

std::string FaultInjector::apply(std::string_view trace, Fault fault) {
  // Byte-level faults come first: they must see the raw stream, not the
  // line-split/rejoined view (which would normalize binary payload bytes).
  switch (fault) {
    case Fault::ChunkTruncate: {
      if (trace.size() < 2) return std::string(trace);
      return std::string(trace.substr(0, 1 + next_below(trace.size() - 1)));
    }
    case Fault::CrcCorrupt: {
      std::string out(trace);
      if (out.empty()) return out;
      // Hit the middle third, where chunk payloads live.
      const std::size_t third = out.size() / 3;
      const std::size_t at = third + next_below(out.size() - 2 * third);
      out[at] = static_cast<char>(
          static_cast<unsigned char>(out[at]) ^
          static_cast<unsigned char>(1 + next_below(255)));
      return out;
    }
    case Fault::FooterDamage: {
      std::string out(trace);
      if (out.empty()) return out;
      const std::size_t window = out.size() < 16 ? out.size() : 16;
      const std::size_t at = out.size() - 1 - next_below(window);
      out[at] = static_cast<char>(
          static_cast<unsigned char>(out[at]) ^
          static_cast<unsigned char>(1 + next_below(255)));
      return out;
    }
    default: break;
  }

  std::vector<std::string> lines = split_lines(trace);
  // Index 0 is the header; mutations target the record body when possible so
  // every fault kind exercises the record-level handling at least sometimes.
  const std::size_t body_begin = lines.size() > 1 ? 1 : 0;
  const std::size_t body_count = lines.size() - body_begin;

  switch (fault) {
    case Fault::TruncateTail: {
      if (trace.empty()) return std::string(trace);
      // Cut somewhere in the last two thirds, so a prefix usually survives.
      const std::size_t cut =
          trace.size() / 3 + next_below(trace.size() - trace.size() / 3);
      return std::string(trace.substr(0, cut));
    }
    case Fault::TruncateMidLine: {
      if (body_count == 0) return join_lines(lines);
      const std::size_t victim = body_begin + next_below(body_count);
      std::string& line = lines[victim];
      line = line.substr(0, next_below(line.size() + 1));
      lines.resize(victim + 1);
      std::string out = join_lines(lines);
      if (!out.empty()) out.pop_back();  // drop the final newline: a torn write
      return out;
    }
    case Fault::DropRecord: {
      if (body_count == 0) return join_lines(lines);
      lines.erase(lines.begin() +
                  static_cast<std::ptrdiff_t>(body_begin + next_below(body_count)));
      return join_lines(lines);
    }
    case Fault::DropExit: {
      std::vector<std::size_t> exits;
      for (std::size_t i = body_begin; i < lines.size(); ++i) {
        if (lines[i].rfind("X ", 0) == 0 || lines[i].rfind("P ", 0) == 0) {
          exits.push_back(i);
        }
      }
      if (exits.empty()) return join_lines(lines);
      lines.erase(lines.begin() +
                  static_cast<std::ptrdiff_t>(exits[next_below(exits.size())]));
      return join_lines(lines);
    }
    case Fault::DuplicateRecord: {
      if (body_count == 0) return join_lines(lines);
      const std::size_t victim = body_begin + next_below(body_count);
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(victim), lines[victim]);
      return join_lines(lines);
    }
    case Fault::CorruptId: {
      if (body_count == 0) return join_lines(lines);
      const std::size_t victim = body_begin + next_below(body_count);
      std::string& line = lines[victim];
      const std::size_t space = line.find(' ');
      if (space != std::string::npos) {
        const std::size_t end = line.find(' ', space + 1);
        line.replace(space + 1,
                     (end == std::string::npos ? line.size() : end) - space - 1,
                     std::to_string(3000000000ull + next_below(1000000000ull)));
      }
      return join_lines(lines);
    }
    case Fault::CorruptField: {
      if (body_count == 0) return join_lines(lines);
      const std::size_t victim = body_begin + next_below(body_count);
      std::string& line = lines[victim];
      // Replace the token at a random space boundary with a hostile value.
      static constexpr const char* kPoison[] = {"-1", "1e9", "0x10", "NaN", "",
                                                "99999999999999999999"};
      std::vector<std::size_t> spaces;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ' ') spaces.push_back(i);
      }
      if (spaces.empty()) {
        line += ' ';
        line += kPoison[next_below(std::size(kPoison))];
      } else {
        const std::size_t at = spaces[next_below(spaces.size())] + 1;
        const std::size_t end = line.find(' ', at);
        line.replace(at, (end == std::string::npos ? line.size() : end) - at,
                     kPoison[next_below(std::size(kPoison))]);
      }
      return join_lines(lines);
    }
    case Fault::GarbageLine: {
      std::string garbage;
      const std::size_t len = 1 + next_below(40);
      for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(1 + next_below(255));
        if (c == '\n') c = '?';
        garbage += c;
      }
      const std::size_t at = body_begin + next_below(body_count + 1);
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), garbage);
      return join_lines(lines);
    }
    case Fault::BitFlip: {
      std::string out(trace);
      if (out.empty()) return out;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const std::size_t at = next_below(out.size());
        const char flipped =
            static_cast<char>(out[at] ^ static_cast<char>(1 << next_below(7)));
        if (out[at] == '\n' || flipped == '\n') continue;  // keep line structure
        out[at] = flipped;
        break;
      }
      return out;
    }
    case Fault::SwapAdjacent: {
      if (body_count < 2) return join_lines(lines);
      const std::size_t at = body_begin + next_below(body_count - 1);
      std::swap(lines[at], lines[at + 1]);
      return join_lines(lines);
    }
    case Fault::ChunkTruncate:
    case Fault::CrcCorrupt:
    case Fault::FooterDamage:
    case Fault::kCount_: break;  // handled above / unreachable
  }
  return std::string(trace);
}

}  // namespace ppd::trace
