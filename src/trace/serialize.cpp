#include "trace/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "support/assert.hpp"

namespace ppd::trace {
namespace {

void ensure_slot(std::vector<bool>& defined, std::size_t index) {
  if (defined.size() <= index) defined.resize(index + 1, false);
}

[[noreturn]] void malformed(std::uint64_t line_no, const std::string& line) {
  throw std::runtime_error("malformed trace record at line " + std::to_string(line_no) +
                           ": " + line);
}

}  // namespace

TraceWriter::TraceWriter(const TraceContext& program, std::ostream& out)
    : program_(program), out_(out) {
  out_ << "ppd-trace 1\n";
}

void TraceWriter::ensure_var(VarId var) {
  ensure_slot(var_defined_, var.value());
  if (var_defined_[var.value()]) return;
  const VarInfo& info = program_.var_info(var);
  PPD_ASSERT_MSG(info.name.find_first_of(" \t\n") == std::string::npos,
                 "serialized names must not contain whitespace");
  out_ << "var " << var.value() << ' ' << (info.local ? 1 : 0) << ' ' << info.name << '\n';
  var_defined_[var.value()] = true;
}

void TraceWriter::ensure_region(const RegionInfo& region) {
  ensure_slot(region_defined_, region.id.value());
  if (region_defined_[region.id.value()]) return;
  PPD_ASSERT_MSG(region.name.find_first_of(" \t\n") == std::string::npos,
                 "serialized names must not contain whitespace");
  out_ << (region.kind == RegionKind::Function ? "fn " : "lp ") << region.id.value() << ' '
       << region.line << ' ' << region.name << '\n';
  region_defined_[region.id.value()] = true;
}

void TraceWriter::ensure_statement(const StatementInfo& stmt) {
  ensure_slot(stmt_defined_, stmt.id.value());
  if (stmt_defined_[stmt.id.value()]) return;
  PPD_ASSERT_MSG(stmt.name.find_first_of(" \t\n") == std::string::npos,
                 "serialized names must not contain whitespace");
  out_ << "st " << stmt.id.value() << ' ' << stmt.line << ' ' << stmt.name << '\n';
  stmt_defined_[stmt.id.value()] = true;
}

void TraceWriter::on_region_enter(const RegionInfo& region) {
  ensure_region(region);
  out_ << "E " << region.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_region_exit(const RegionInfo& region) {
  out_ << "X " << region.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_iteration(const RegionInfo& loop, std::uint64_t iteration) {
  (void)iteration;  // iterations are implicit: replay re-counts from zero
  out_ << "I " << loop.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_access(const AccessEvent& access) {
  ensure_var(access.var);
  const std::uint64_t index = TraceContext::addr_index(access.addr);
  if (access.kind == AccessKind::Read) {
    out_ << "R " << access.var.value() << ' ' << index << ' ' << access.line << ' '
         << access.cost << '\n';
  } else {
    out_ << "W " << access.var.value() << ' ' << index << ' ' << access.line << ' '
         << access.cost << ' ' << static_cast<int>(access.op) << '\n';
  }
  ++records_;
}

void TraceWriter::on_compute(const ComputeEvent& compute) {
  out_ << "C " << compute.line << ' ' << compute.cost << '\n';
  ++records_;
}

void TraceWriter::on_statement_enter(const StatementInfo& stmt) {
  ensure_statement(stmt);
  out_ << "S " << stmt.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_statement_exit(const StatementInfo& stmt) {
  out_ << "P " << stmt.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_trace_end() { out_.flush(); }

std::uint64_t replay_trace(std::istream& in, TraceContext& ctx) {
  std::string header;
  if (!std::getline(in, header) || header != "ppd-trace 1") {
    throw std::runtime_error("not a ppd trace file (missing 'ppd-trace 1' header)");
  }

  struct RegionDef {
    RegionKind kind;
    SourceLine line;
    std::string name;
  };
  struct StmtDef {
    SourceLine line;
    std::string name;
  };
  std::unordered_map<std::uint32_t, VarId> vars;
  std::unordered_map<std::uint32_t, RegionDef> regions;
  std::unordered_map<std::uint32_t, StmtDef> stmts;

  // Open scopes, reconstructed with the RAII wrappers on the heap. The
  // variant keeps destruction order identical to the original execution.
  struct OpenScope {
    std::unique_ptr<FunctionScope> function;
    std::unique_ptr<LoopScope> loop;
    std::unique_ptr<StatementScope> statement;
    std::uint32_t file_id = 0;
    char kind = 0;  // 'f', 'l', 's'
  };
  std::vector<OpenScope> scope_stack;

  std::uint64_t records = 0;
  std::uint64_t line_no = 1;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;

    if (tag == "var") {
      std::uint32_t id = 0;
      int local = 0;
      std::string name;
      if (!(is >> id >> local >> name)) malformed(line_no, line);
      vars.emplace(id, local != 0 ? ctx.local_var(name) : ctx.var(name));
    } else if (tag == "fn" || tag == "lp") {
      std::uint32_t id = 0;
      SourceLine src_line = 0;
      std::string name;
      if (!(is >> id >> src_line >> name)) malformed(line_no, line);
      regions.emplace(
          id, RegionDef{tag == "fn" ? RegionKind::Function : RegionKind::Loop, src_line,
                        std::move(name)});
    } else if (tag == "st") {
      std::uint32_t id = 0;
      SourceLine src_line = 0;
      std::string name;
      if (!(is >> id >> src_line >> name)) malformed(line_no, line);
      stmts.emplace(id, StmtDef{src_line, std::move(name)});
    } else if (tag == "E") {
      std::uint32_t id = 0;
      if (!(is >> id)) malformed(line_no, line);
      auto def = regions.find(id);
      if (def == regions.end()) malformed(line_no, line);
      OpenScope scope;
      scope.file_id = id;
      if (def->second.kind == RegionKind::Function) {
        scope.kind = 'f';
        scope.function =
            std::make_unique<FunctionScope>(ctx, def->second.name, def->second.line);
      } else {
        scope.kind = 'l';
        scope.loop = std::make_unique<LoopScope>(ctx, def->second.name, def->second.line);
      }
      scope_stack.push_back(std::move(scope));
      ++records;
    } else if (tag == "X") {
      std::uint32_t id = 0;
      if (!(is >> id)) malformed(line_no, line);
      if (scope_stack.empty() || scope_stack.back().kind == 's' ||
          scope_stack.back().file_id != id) {
        malformed(line_no, line);
      }
      scope_stack.pop_back();
      ++records;
    } else if (tag == "I") {
      std::uint32_t id = 0;
      if (!(is >> id)) malformed(line_no, line);
      if (scope_stack.empty() || scope_stack.back().kind != 'l' ||
          scope_stack.back().file_id != id) {
        malformed(line_no, line);
      }
      scope_stack.back().loop->begin_iteration();
      ++records;
    } else if (tag == "S") {
      std::uint32_t id = 0;
      if (!(is >> id)) malformed(line_no, line);
      auto def = stmts.find(id);
      if (def == stmts.end()) malformed(line_no, line);
      OpenScope scope;
      scope.file_id = id;
      scope.kind = 's';
      scope.statement =
          std::make_unique<StatementScope>(ctx, def->second.name, def->second.line);
      scope_stack.push_back(std::move(scope));
      ++records;
    } else if (tag == "P") {
      std::uint32_t id = 0;
      if (!(is >> id)) malformed(line_no, line);
      if (scope_stack.empty() || scope_stack.back().kind != 's' ||
          scope_stack.back().file_id != id) {
        malformed(line_no, line);
      }
      scope_stack.pop_back();
      ++records;
    } else if (tag == "R" || tag == "W") {
      std::uint32_t var_id = 0;
      std::uint64_t index = 0;
      SourceLine src_line = 0;
      Cost cost = 0;
      if (!(is >> var_id >> index >> src_line >> cost)) malformed(line_no, line);
      auto var = vars.find(var_id);
      if (var == vars.end()) malformed(line_no, line);
      if (tag == "R") {
        ctx.read(var->second, index, src_line, cost);
      } else {
        int op = 0;
        if (!(is >> op) || op < 0 || op > 4) malformed(line_no, line);
        if (op == 0) {
          ctx.write(var->second, index, src_line, cost);
        } else {
          // update() would emit an extra read; re-emit the tagged write only.
          ctx.write_impl(var->second, index, src_line, cost, static_cast<UpdateOp>(op));
        }
      }
      ++records;
    } else if (tag == "C") {
      SourceLine src_line = 0;
      Cost cost = 0;
      if (!(is >> src_line >> cost)) malformed(line_no, line);
      ctx.compute(src_line, cost);
      ++records;
    } else {
      malformed(line_no, line);
    }
  }

  if (!scope_stack.empty()) {
    throw std::runtime_error("trace ended with " + std::to_string(scope_stack.size()) +
                             " scope(s) still open");
  }
  ctx.finish();
  return records;
}

}  // namespace ppd::trace
