#include "trace/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ppd::trace {
namespace {

using support::ErrorCode;
using support::Status;

void ensure_slot(std::vector<bool>& defined, std::size_t index) {
  if (defined.size() <= index) defined.resize(index + 1, false);
}

/// Splits one record line into whitespace-separated fields with checked
/// unsigned parsing. Rejects negative numbers (which operator>> into an
/// unsigned type would silently wrap) and overflow.
class FieldParser {
 public:
  explicit FieldParser(std::string_view line) : line_(line) {}

  [[nodiscard]] std::string_view next_token() {
    skip_spaces();
    const std::size_t begin = pos_;
    while (pos_ < line_.size() && !is_space(line_[pos_])) ++pos_;
    return line_.substr(begin, pos_ - begin);
  }

  [[nodiscard]] bool parse_u64(std::uint64_t& out) {
    const std::string_view token = next_token();
    if (token.empty()) return false;
    std::uint64_t value = 0;
    for (const char c : token) {
      if (c < '0' || c > '9') return false;
      const auto digit = static_cast<std::uint64_t>(c - '0');
      if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) return false;
      value = value * 10 + digit;
    }
    out = value;
    return true;
  }

  /// Parses an id field. The all-ones value is the Id<> invalid sentinel and
  /// is rejected, so every accepted id round-trips through the strong types.
  [[nodiscard]] bool parse_id(std::uint32_t& out) {
    std::uint64_t value = 0;
    if (!parse_u64(value) || value >= std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    out = static_cast<std::uint32_t>(value);
    return true;
  }

  /// True when only trailing whitespace remains.
  [[nodiscard]] bool at_end() {
    skip_spaces();
    return pos_ >= line_.size();
  }

 private:
  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  void skip_spaces() {
    while (pos_ < line_.size() && is_space(line_[pos_])) ++pos_;
  }

  std::string_view line_;
  std::size_t pos_ = 0;
};

/// Stateful single-pass replayer; shared by both modes.
class Replayer {
 public:
  Replayer(TraceContext& ctx, const ReplayOptions& options)
      : ctx_(ctx), options_(options) {}

  ReplayResult run(std::istream& in) {
    std::string line;
    std::uint64_t line_no = 1;
    if (!std::getline(in, line)) {
      result_.status = Status::error(ErrorCode::BadHeader, "empty input", 1);
      return result_;
    }
    if (line != "ppd-trace 1") {
      const Status bad = Status::error(
          ErrorCode::BadHeader, "not a ppd trace file (missing 'ppd-trace 1' header)", 1);
      if (strict()) {
        result_.status = bad;
        return result_;
      }
      diag(bad);
      // The first line may simply be a record of a header-stripped trace;
      // fall through and let record parsing judge it.
      const Status s = handle_line(line, line_no);
      if (!s.is_ok() && !note_record_error(s)) return result_;
    }
    while (std::getline(in, line)) {
      ++line_no;
      if (line.size() > options_.limits.max_line_length) {
        result_.status = Status::error(
            ErrorCode::ResourceLimit,
            "record longer than " + std::to_string(options_.limits.max_line_length) +
                " bytes",
            line_no);
        unwind_scopes();
        return result_;
      }
      const Status s = handle_line(line, line_no);
      if (!s.is_ok() && !note_record_error(s)) return result_;
    }
    finish(line_no);
    return result_;
  }

 private:
  struct RegionDef {
    RegionKind kind;
    SourceLine line;
    std::string name;
  };
  struct StmtDef {
    SourceLine line;
    std::string name;
  };
  struct VarDef {
    bool local;
    std::string name;
    VarId id;
  };

  // Open scopes, reconstructed with the RAII wrappers on the heap. Exactly
  // one member is active per entry; entries are destroyed strictly LIFO so
  // the emitted exit events mirror a well-nested execution.
  struct OpenScope {
    std::unique_ptr<FunctionScope> function;
    std::unique_ptr<LoopScope> loop;
    std::unique_ptr<StatementScope> statement;
    std::uint32_t file_id = 0;
    char kind = 0;  // 'f', 'l', 's'
  };

  [[nodiscard]] bool strict() const { return options_.mode == ReplayMode::Strict; }

  void diag(const Status& status) {
    if (options_.diags != nullptr) {
      options_.diags->report(
          support::Diag{status.code(), status.line(), status.message()});
    }
  }

  /// Routes a per-record error: lenient drops and continues (true), strict —
  /// and resource exhaustion in either mode — stops the replay (false).
  [[nodiscard]] bool note_record_error(const Status& status) {
    if (strict() || status.code() == ErrorCode::ResourceLimit) {
      result_.status = status;
      unwind_scopes();
      return false;
    }
    diag(status);
    ++result_.dropped;
    return true;
  }

  [[nodiscard]] Status count_event(std::uint64_t line_no) {
    if (result_.records >= options_.limits.max_records) {
      return Status::error(ErrorCode::ResourceLimit,
                           "event count exceeds cap of " +
                               std::to_string(options_.limits.max_records),
                           line_no);
    }
    return Status::ok();
  }

  [[nodiscard]] Status count_definition(std::uint64_t line_no) {
    const std::uint64_t total = vars_.size() + regions_.size() + stmts_.size();
    if (total >= options_.limits.max_definitions) {
      return Status::error(ErrorCode::ResourceLimit,
                           "definition count exceeds cap of " +
                               std::to_string(options_.limits.max_definitions),
                           line_no);
    }
    return Status::ok();
  }

  [[nodiscard]] static Status malformed(std::uint64_t line_no, std::string_view what) {
    return Status::error(ErrorCode::MalformedRecord, std::string(what), line_no);
  }

  [[nodiscard]] Status handle_line(const std::string& line, std::uint64_t line_no) {
    FieldParser fields(line);
    const std::string_view tag = fields.next_token();
    if (tag.empty()) return Status::ok();  // blank line

    if (tag == "var") return handle_var(fields, line_no);
    if (tag == "fn" || tag == "lp") return handle_region_def(fields, line_no, tag == "fn");
    if (tag == "st") return handle_stmt_def(fields, line_no);
    if (tag == "E") return handle_enter(fields, line_no);
    if (tag == "X") return handle_exit(fields, line_no);
    if (tag == "I") return handle_iteration(fields, line_no);
    if (tag == "S") return handle_stmt_enter(fields, line_no);
    if (tag == "P") return handle_stmt_exit(fields, line_no);
    if (tag == "R" || tag == "W") return handle_access(fields, line_no, tag == "W");
    if (tag == "C") return handle_compute(fields, line_no);
    return Status::error(ErrorCode::UnknownTag,
                         "unknown record tag '" + std::string(tag) + "'", line_no);
  }

  [[nodiscard]] Status require_end(FieldParser& fields, std::uint64_t line_no) {
    if (fields.at_end()) return Status::ok();
    return Status::error(ErrorCode::TrailingGarbage,
                         "extra fields after a complete record", line_no);
  }

  Status handle_var(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    std::uint64_t local = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad variable id");
    if (!fields.parse_u64(local) || local > 1) {
      return malformed(line_no, "variable 'local' flag must be 0 or 1");
    }
    const std::string name(fields.next_token());
    if (name.empty()) return malformed(line_no, "missing variable name");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;

    auto it = vars_.find(id);
    if (it != vars_.end()) {
      if (it->second.local == (local != 0) && it->second.name == name) {
        return Status::ok();  // idempotent re-definition
      }
      return Status::error(ErrorCode::DuplicateDefinition,
                           "variable id " + std::to_string(id) + " redefined differently",
                           line_no);
    }
    if (Status s = count_definition(line_no); !s.is_ok()) return s;
    const VarId var = local != 0 ? ctx_.local_var(name) : ctx_.var(name);
    vars_.emplace(id, VarDef{local != 0, name, var});
    return Status::ok();
  }

  Status handle_region_def(FieldParser& fields, std::uint64_t line_no, bool is_function) {
    std::uint32_t id = 0;
    std::uint64_t src_line = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad region id");
    if (!fields.parse_u64(src_line) ||
        src_line > std::numeric_limits<SourceLine>::max()) {
      return malformed(line_no, "bad region source line");
    }
    std::string name(fields.next_token());
    if (name.empty()) return malformed(line_no, "missing region name");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;

    const RegionKind kind = is_function ? RegionKind::Function : RegionKind::Loop;
    auto it = regions_.find(id);
    if (it != regions_.end()) {
      if (it->second.kind == kind && it->second.line == src_line &&
          it->second.name == name) {
        return Status::ok();
      }
      return Status::error(ErrorCode::DuplicateDefinition,
                           "region id " + std::to_string(id) + " redefined differently",
                           line_no);
    }
    if (Status s = count_definition(line_no); !s.is_ok()) return s;
    regions_.emplace(
        id, RegionDef{kind, static_cast<SourceLine>(src_line), std::move(name)});
    return Status::ok();
  }

  Status handle_stmt_def(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    std::uint64_t src_line = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad statement id");
    if (!fields.parse_u64(src_line) ||
        src_line > std::numeric_limits<SourceLine>::max()) {
      return malformed(line_no, "bad statement source line");
    }
    std::string name(fields.next_token());
    if (name.empty()) return malformed(line_no, "missing statement name");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;

    auto it = stmts_.find(id);
    if (it != stmts_.end()) {
      if (it->second.line == src_line && it->second.name == name) return Status::ok();
      return Status::error(ErrorCode::DuplicateDefinition,
                           "statement id " + std::to_string(id) + " redefined differently",
                           line_no);
    }
    if (Status s = count_definition(line_no); !s.is_ok()) return s;
    stmts_.emplace(id, StmtDef{static_cast<SourceLine>(src_line), std::move(name)});
    return Status::ok();
  }

  Status handle_enter(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad region id");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    auto def = regions_.find(id);
    if (def == regions_.end()) {
      return Status::error(ErrorCode::UndefinedId,
                           "enter of undefined region " + std::to_string(id), line_no);
    }
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    OpenScope scope;
    scope.file_id = id;
    if (def->second.kind == RegionKind::Function) {
      scope.kind = 'f';
      scope.function =
          std::make_unique<FunctionScope>(ctx_, def->second.name, def->second.line);
    } else {
      scope.kind = 'l';
      scope.loop = std::make_unique<LoopScope>(ctx_, def->second.name, def->second.line);
    }
    scope_stack_.push_back(std::move(scope));
    ++result_.records;
    return Status::ok();
  }

  Status handle_exit(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad region id");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    if (scope_stack_.empty() || scope_stack_.back().kind == 's' ||
        scope_stack_.back().file_id != id) {
      return Status::error(ErrorCode::ScopeMismatch,
                           "exit of region " + std::to_string(id) +
                               " does not match the innermost open scope",
                           line_no);
    }
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    scope_stack_.pop_back();
    ++result_.records;
    return Status::ok();
  }

  Status handle_iteration(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad loop id");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    if (scope_stack_.empty() || scope_stack_.back().kind != 'l' ||
        scope_stack_.back().file_id != id) {
      return Status::error(ErrorCode::IterationOutsideLoop,
                           "iteration of loop " + std::to_string(id) +
                               " outside its innermost loop scope",
                           line_no);
    }
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    scope_stack_.back().loop->begin_iteration();
    ++result_.records;
    return Status::ok();
  }

  Status handle_stmt_enter(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad statement id");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    auto def = stmts_.find(id);
    if (def == stmts_.end()) {
      return Status::error(ErrorCode::UndefinedId,
                           "open of undefined statement " + std::to_string(id), line_no);
    }
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    OpenScope scope;
    scope.file_id = id;
    scope.kind = 's';
    scope.statement =
        std::make_unique<StatementScope>(ctx_, def->second.name, def->second.line);
    scope_stack_.push_back(std::move(scope));
    ++result_.records;
    return Status::ok();
  }

  Status handle_stmt_exit(FieldParser& fields, std::uint64_t line_no) {
    std::uint32_t id = 0;
    if (!fields.parse_id(id)) return malformed(line_no, "bad statement id");
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    if (scope_stack_.empty() || scope_stack_.back().kind != 's' ||
        scope_stack_.back().file_id != id) {
      return Status::error(ErrorCode::ScopeMismatch,
                           "close of statement " + std::to_string(id) +
                               " does not match the innermost open scope",
                           line_no);
    }
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    scope_stack_.pop_back();
    ++result_.records;
    return Status::ok();
  }

  Status handle_access(FieldParser& fields, std::uint64_t line_no, bool is_write) {
    std::uint32_t var_id = 0;
    std::uint64_t index = 0;
    std::uint64_t src_line = 0;
    std::uint64_t cost = 0;
    if (!fields.parse_id(var_id)) return malformed(line_no, "bad variable id");
    if (!fields.parse_u64(index)) return malformed(line_no, "bad element index");
    if (!fields.parse_u64(src_line) ||
        src_line > std::numeric_limits<SourceLine>::max()) {
      return malformed(line_no, "bad access source line");
    }
    if (!fields.parse_u64(cost)) {
      return malformed(line_no, "access cost must be a non-negative integer");
    }
    std::uint64_t op = 0;
    if (is_write) {
      if (!fields.parse_u64(op) || op > static_cast<std::uint64_t>(UpdateOp::Max)) {
        return Status::error(ErrorCode::BadWriteOp,
                             "unknown write update-op code", line_no);
      }
    }
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    auto var = vars_.find(var_id);
    if (var == vars_.end()) {
      return Status::error(ErrorCode::UndefinedId,
                           "access to undefined variable " + std::to_string(var_id),
                           line_no);
    }
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    if (!is_write) {
      ctx_.read(var->second.id, index, static_cast<SourceLine>(src_line), cost);
    } else if (op == 0) {
      ctx_.write(var->second.id, index, static_cast<SourceLine>(src_line), cost);
    } else {
      // update() would emit an extra read; re-emit the tagged write only.
      ctx_.write_impl(var->second.id, index, static_cast<SourceLine>(src_line), cost,
                      static_cast<UpdateOp>(op));
    }
    ++result_.records;
    return Status::ok();
  }

  Status handle_compute(FieldParser& fields, std::uint64_t line_no) {
    std::uint64_t src_line = 0;
    std::uint64_t cost = 0;
    if (!fields.parse_u64(src_line) ||
        src_line > std::numeric_limits<SourceLine>::max()) {
      return malformed(line_no, "bad compute source line");
    }
    if (!fields.parse_u64(cost)) {
      return malformed(line_no, "compute cost must be a non-negative integer");
    }
    if (Status s = require_end(fields, line_no); !s.is_ok()) return s;
    if (Status s = count_event(line_no); !s.is_ok()) return s;
    ctx_.compute(static_cast<SourceLine>(src_line), cost);
    ++result_.records;
    return Status::ok();
  }

  /// Closes any open scopes strictly LIFO (the RAII destructors emit the
  /// matching exit events, keeping the context's own invariants intact).
  void unwind_scopes() {
    while (!scope_stack_.empty()) scope_stack_.pop_back();
  }

  void finish(std::uint64_t line_no) {
    if (!scope_stack_.empty()) {
      const Status unclosed = Status::error(
          ErrorCode::UnclosedScope,
          "trace ended with " + std::to_string(scope_stack_.size()) +
              " scope(s) still open",
          line_no);
      if (strict()) {
        result_.status = unclosed;
        unwind_scopes();
        return;
      }
      diag(unclosed);
      result_.repaired_scopes = scope_stack_.size();
      unwind_scopes();  // repair: synthesize the missing exits
    }
    ctx_.finish();
    result_.finished = true;
  }

  TraceContext& ctx_;
  const ReplayOptions& options_;
  ReplayResult result_;
  std::unordered_map<std::uint32_t, VarDef> vars_;
  std::unordered_map<std::uint32_t, RegionDef> regions_;
  std::unordered_map<std::uint32_t, StmtDef> stmts_;
  std::vector<OpenScope> scope_stack_;
};

}  // namespace

TraceWriter::TraceWriter(const TraceContext& program, std::ostream& out)
    : program_(program), out_(out) {
  out_ << "ppd-trace 1\n";
}

void TraceWriter::ensure_var(VarId var) {
  ensure_slot(var_defined_, var.value());
  if (var_defined_[var.value()]) return;
  const VarInfo& info = program_.var_info(var);
  PPD_ASSERT_MSG(info.name.find_first_of(" \t\n") == std::string::npos,
                 "serialized names must not contain whitespace");
  out_ << "var " << var.value() << ' ' << (info.local ? 1 : 0) << ' ' << info.name << '\n';
  var_defined_[var.value()] = true;
}

void TraceWriter::ensure_region(const RegionInfo& region) {
  ensure_slot(region_defined_, region.id.value());
  if (region_defined_[region.id.value()]) return;
  PPD_ASSERT_MSG(region.name.find_first_of(" \t\n") == std::string::npos,
                 "serialized names must not contain whitespace");
  out_ << (region.kind == RegionKind::Function ? "fn " : "lp ") << region.id.value() << ' '
       << region.line << ' ' << region.name << '\n';
  region_defined_[region.id.value()] = true;
}

void TraceWriter::ensure_statement(const StatementInfo& stmt) {
  ensure_slot(stmt_defined_, stmt.id.value());
  if (stmt_defined_[stmt.id.value()]) return;
  PPD_ASSERT_MSG(stmt.name.find_first_of(" \t\n") == std::string::npos,
                 "serialized names must not contain whitespace");
  out_ << "st " << stmt.id.value() << ' ' << stmt.line << ' ' << stmt.name << '\n';
  stmt_defined_[stmt.id.value()] = true;
}

void TraceWriter::on_region_enter(const RegionInfo& region) {
  ensure_region(region);
  out_ << "E " << region.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_region_exit(const RegionInfo& region) {
  out_ << "X " << region.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_iteration(const RegionInfo& loop, std::uint64_t iteration) {
  (void)iteration;  // iterations are implicit: replay re-counts from zero
  out_ << "I " << loop.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_access(const AccessEvent& access) {
  ensure_var(access.var);
  const std::uint64_t index = TraceContext::addr_index(access.addr);
  if (access.kind == AccessKind::Read) {
    out_ << "R " << access.var.value() << ' ' << index << ' ' << access.line << ' '
         << access.cost << '\n';
  } else {
    out_ << "W " << access.var.value() << ' ' << index << ' ' << access.line << ' '
         << access.cost << ' ' << static_cast<int>(access.op) << '\n';
  }
  ++records_;
}

void TraceWriter::on_compute(const ComputeEvent& compute) {
  out_ << "C " << compute.line << ' ' << compute.cost << '\n';
  ++records_;
}

void TraceWriter::on_statement_enter(const StatementInfo& stmt) {
  ensure_statement(stmt);
  out_ << "S " << stmt.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_statement_exit(const StatementInfo& stmt) {
  out_ << "P " << stmt.id.value() << '\n';
  ++records_;
}

void TraceWriter::on_trace_end() { out_.flush(); }

ReplayResult replay_trace(std::istream& in, TraceContext& ctx,
                          const ReplayOptions& options) {
  PPD_OBS_SPAN("ingest.text");
  const ReplayResult result = Replayer(ctx, options).run(in);
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("ingest.text.records").add(result.records);
  registry.counter("ingest.text.dropped").add(result.dropped);
  return result;
}

std::uint64_t replay_trace(std::istream& in, TraceContext& ctx) {
  const ReplayResult result = replay_trace(in, ctx, ReplayOptions{});
  if (!result.status.is_ok()) throw std::runtime_error(result.status.to_string());
  return result.records;
}

}  // namespace ppd::trace
