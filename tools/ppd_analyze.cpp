// ppd-analyze: command-line front end of the pattern-detection pipeline.
//
// Usage:
//   ppd-analyze --list                       list the bundled benchmarks
//   ppd-analyze <benchmark>                  profile + detect + report
//   ppd-analyze <benchmark> --dump-trace F   also write the event trace to F
//   ppd-analyze <benchmark> --markdown F     also write a markdown report to F
//   ppd-analyze <benchmark> --dot PREFIX     also write PREFIX.pet.dot / PREFIX.cu.dot
//   ppd-analyze <benchmark> --comm on        print the communication matrix (§II [16])
//   ppd-analyze <benchmark> --omp on         print OpenMP skeletons per pattern
//   ppd-analyze --trace F [--strict|--lenient] [--max-records N]
//                                            analyze a previously dumped trace
//
// Traces are untrusted input: --strict (the default) stops at the first
// malformed record with a diagnostic naming the offending line; --lenient
// drops bad records, repairs unbalanced scopes at EOF, and completes a
// degraded analysis, reporting what was dropped in the diagnostics section.
//
// Exit codes: 0 success; 1 I/O error; 2 usage; 3 malformed trace;
// 4 analysis failure.
//
// The report covers: the PET with hotspots, the detected patterns (primary
// first), multi-loop pipeline coefficients with the Table II reading,
// reduction candidates with inferred operators, the fork/worker/barrier
// classification of the best task-parallel scope, the ranked pattern list,
// and the derived transformation hints.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "bs/benchmark.hpp"
#include "comm/comm.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/omp_codegen.hpp"
#include "report/markdown.hpp"
#include "support/status.hpp"
#include "trace/serialize.hpp"
#include "trace/validator.hpp"

namespace {

using namespace ppd;

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadTrace = 3;
constexpr int kExitAnalysis = 4;

int usage() {
  std::puts("usage: ppd-analyze --list");
  std::puts("       ppd-analyze <benchmark> [--dump-trace FILE] [--markdown FILE]");
  std::puts("                   [--dot PREFIX] [--comm on] [--omp on]");
  std::puts("       ppd-analyze --trace FILE [--strict|--lenient] [--max-records N]");
  std::puts("exit codes: 0 ok, 1 i/o error, 2 usage, 3 malformed trace,");
  std::puts("            4 analysis failure");
  return kExitUsage;
}

void print_report(const core::AnalysisResult& result, const trace::TraceContext& ctx) {
  std::puts("== Program execution tree (hotspots >= 2%) ==");
  for (pet::NodeIndex node : result.pet.hotspots(0.02)) {
    const pet::PetNode& n = result.pet.node(node);
    std::printf("  %-24s %6.2f%%  (%s%s)\n", n.name.c_str(),
                result.pet.cost_fraction(node) * 100.0, n.is_loop() ? "loop" : "function",
                n.recursive ? ", recursive" : "");
  }

  std::printf("\nPrimary pattern: %s\n", result.primary_description.c_str());
  std::printf("Supporting structure: %s\n\n", core::supporting_structure(result.primary));

  const auto pipelines = result.reported_pipelines();
  if (!pipelines.empty()) {
    std::puts("== Multi-loop pipelines ==");
    for (const core::MultiLoopPipeline* p : pipelines) {
      std::printf("  %s -> %s: a=%.2f b=%.2f e=%.2f%s\n",
                  ctx.region(p->loop_x).name.c_str(), ctx.region(p->loop_y).name.c_str(),
                  p->fit.a, p->fit.b, p->e, p->fusion ? " [fusion]" : "");
      std::printf("    %s\n", core::describe_coefficients(p->fit.a, p->fit.b, 0.05).c_str());
    }
    std::puts("");
  }

  if (!result.reductions.empty()) {
    std::puts("== Reduction candidates (Algorithm 3) ==");
    for (const core::ReductionCandidate& r : result.reductions) {
      std::printf("  loop '%s': variable '%s' at line %u, operator %s\n",
                  ctx.region(r.loop).name.c_str(), ctx.var_info(r.var).name.c_str(), r.line,
                  trace::to_string(r.op));
    }
    std::puts("");
  }

  const core::ScopeTaskParallelism* tasks = result.primary_tasks();
  if (tasks == nullptr) {
    for (const core::ScopeTaskParallelism& t : result.tasks) {
      if (t.tp.worker_count() >= 2 &&
          (tasks == nullptr || t.tp.estimated_speedup > tasks->tp.estimated_speedup)) {
        tasks = &t;
      }
    }
  }
  if (tasks != nullptr && tasks->tp.worker_count() >= 1) {
    std::printf("== Task classification in '%s' ==\n",
                ctx.region(tasks->tp.scope).name.c_str());
    std::fputs(tasks->tp.render(tasks->graph).c_str(), stdout);
    std::puts("");
  }

  const auto ranked = core::rank_patterns(result, ctx);
  if (!ranked.empty()) {
    std::puts("== Ranked patterns (best first) ==");
    for (const core::RankedPattern& r : ranked) {
      std::printf("  %-60s  benefit %.2fx  effort %-6s score %.3f\n", r.description.c_str(),
                  r.expected_benefit, core::to_string(r.effort), r.score);
    }
    std::puts("");
  }

  const auto hints = core::derive_hints(result, ctx);
  if (!hints.empty()) {
    std::puts("== Transformation hints ==");
    for (const core::TransformationHint& h : hints) {
      std::printf("  [%s] %s\n", core::to_string(h.kind), h.text.c_str());
    }
  }
}

void print_diagnostics(const trace::ReplayResult& replay, const support::DiagSink& diags,
                       const trace::Validator& validator, trace::ReplayMode mode) {
  std::puts("== Diagnostics ==");
  std::printf("  mode: %s\n",
              mode == trace::ReplayMode::Strict ? "strict" : "lenient");
  std::printf("  records replayed: %llu, dropped: %llu, repaired scopes: %llu\n",
              static_cast<unsigned long long>(replay.records),
              static_cast<unsigned long long>(replay.dropped),
              static_cast<unsigned long long>(replay.repaired_scopes));
  std::printf("  stream-invariant violations: %llu\n",
              static_cast<unsigned long long>(validator.violations()));
  constexpr std::size_t kMaxShown = 10;
  std::size_t shown = 0;
  for (const support::Diag& d : diags.diags()) {
    if (shown++ == kMaxShown) break;
    std::printf("  - %s\n", d.to_string().c_str());
  }
  if (diags.total() > kMaxShown) {
    std::printf("  ... and %llu more\n",
                static_cast<unsigned long long>(diags.total() - kMaxShown));
  }
  std::puts("");
}

int analyze_trace_file(const char* path, trace::ReplayOptions options) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", path);
    return kExitIo;
  }

  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  support::DiagSink diags;
  trace::Validator validator(&diags);
  ctx.add_sink(&validator);
  options.diags = &diags;

  const trace::ReplayResult replay = trace::replay_trace(in, ctx, options);
  if (!replay.status.is_ok()) {
    std::fprintf(stderr, "replay failed: %s\n", replay.status.to_string().c_str());
    return kExitBadTrace;
  }
  std::printf("replayed %llu records from %s\n\n",
              static_cast<unsigned long long>(replay.records), path);
  if (replay.dropped != 0 || replay.repaired_scopes != 0 || !validator.ok() ||
      !diags.empty()) {
    print_diagnostics(replay, diags, validator, options.mode);
  }

  try {
    const core::AnalysisResult result = analyzer.analyze();
    print_report(result, ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis failed: %s\n", e.what());
    return kExitAnalysis;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const bs::Benchmark* b : bs::all_benchmarks()) {
      std::printf("%-14s (%s) -- paper: %s\n", b->paper().name, b->paper().suite,
                  b->paper().pattern);
    }
    return kExitOk;
  }

  if (std::strcmp(argv[1], "--trace") == 0) {
    if (argc < 3) return usage();
    trace::ReplayOptions options;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--strict") == 0) {
        options.mode = trace::ReplayMode::Strict;
      } else if (std::strcmp(argv[i], "--lenient") == 0) {
        options.mode = trace::ReplayMode::Lenient;
      } else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc) {
        char* end = nullptr;
        const unsigned long long cap = std::strtoull(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0' || cap == 0) return usage();
        options.limits.max_records = cap;
      } else {
        return usage();
      }
    }
    return analyze_trace_file(argv[2], options);
  }

  const bs::Benchmark* benchmark = bs::find_benchmark(argv[1]);
  if (benchmark == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n", argv[1]);
    return kExitUsage;
  }

  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);

  const char* dump_path = nullptr;
  const char* markdown_path = nullptr;
  const char* dot_prefix = nullptr;
  bool want_comm = false;
  bool want_omp = false;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--dump-trace") == 0) {
      dump_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      dot_prefix = argv[i + 1];
    } else if (std::strcmp(argv[i], "--comm") == 0) {
      want_comm = true;
    } else if (std::strcmp(argv[i], "--omp") == 0) {
      want_omp = true;
    } else {
      return usage();
    }
  }

  comm::CommProfiler comm_profiler;
  if (want_comm) ctx.add_sink(&comm_profiler);

  std::unique_ptr<std::ofstream> dump;
  std::unique_ptr<trace::TraceWriter> writer;
  if (dump_path != nullptr) {
    dump = std::make_unique<std::ofstream>(dump_path);
    if (!*dump) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", dump_path);
      return kExitIo;
    }
    writer = std::make_unique<trace::TraceWriter>(ctx, *dump);
    ctx.add_sink(writer.get());
  }

  try {
    benchmark->run_traced(ctx);
    const core::AnalysisResult result = analyzer.analyze();
    if (writer != nullptr) {
      std::printf("trace written: %llu records\n\n",
                  static_cast<unsigned long long>(writer->records_written()));
    }
    print_report(result, ctx);

    if (want_comm) {
      std::puts("\n== Communication characterization ==");
      std::fputs(comm_profiler.build(result.profile).render(ctx).c_str(), stdout);
    }

    if (want_omp) {
      std::puts("\n== OpenMP skeletons ==");
      for (const core::OmpSuggestion& s : core::generate_openmp(result, ctx)) {
        std::printf("\n%s\n  // note: %s\n", s.construct.c_str(), s.note.c_str());
      }
    }

    if (markdown_path != nullptr) {
      std::ofstream md(markdown_path);
      md << report::markdown_report(result, ctx, benchmark->paper().name);
      std::printf("\nmarkdown report written to %s\n", markdown_path);
    }
    if (dot_prefix != nullptr) {
      {
        std::ofstream pet_dot(std::string(dot_prefix) + ".pet.dot");
        pet_dot << report::pet_to_dot(result.pet);
      }
      const core::ScopeTaskParallelism* tasks = result.primary_tasks();
      if (tasks == nullptr && !result.tasks.empty()) tasks = &result.tasks.front();
      if (tasks != nullptr) {
        std::ofstream cu_dot(std::string(dot_prefix) + ".cu.dot");
        cu_dot << report::cu_graph_to_dot(tasks->graph, &tasks->tp);
      }
      std::printf("Graphviz files written with prefix %s\n", dot_prefix);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis failed: %s\n", e.what());
    return kExitAnalysis;
  }
  return kExitOk;
}
