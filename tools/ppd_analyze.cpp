// ppd-analyze: command-line front end of the pattern-detection pipeline.
//
// Usage:
//   ppd-analyze --list                       list the bundled benchmarks
//   ppd-analyze <benchmark>                  profile + detect + report
//   ppd-analyze <benchmark> --dump-trace F   also write the event trace to F
//                                            (text, or .ppdt binary by extension)
//   ppd-analyze <benchmark> --markdown F     also write a markdown report to F
//   ppd-analyze <benchmark> --dot PREFIX     also write PREFIX.pet.dot / PREFIX.cu.dot
//   ppd-analyze <benchmark> --comm on        print the communication matrix (§II [16])
//   ppd-analyze <benchmark> --omp on         print OpenMP skeletons per pattern
//   ppd-analyze --trace F [--strict|--lenient] [--max-records N] [--jobs N]
//                                            analyze a dumped trace (text or .ppdt,
//                                            sniffed by content; --jobs fans the
//                                            binary chunk decode over N threads)
//   ppd-analyze convert IN OUT [--chunk-bytes N] [--lenient]
//                                            convert text <-> binary (direction
//                                            follows the input format)
//   ppd-analyze --batch PATH... [--jobs N] [--cache DIR | --no-cache] [--refresh]
//               [--strict|--lenient] [--max-records N]
//                                            analyze every trace in the given
//                                            files/directories concurrently; a
//                                            content-hash keyed cache skips
//                                            traces that did not change
//   ppd-analyze remote --socket PATH (--trace F | --ping | --metrics | --shutdown)
//               [--strict|--lenient] [--max-records N] [--no-cache] [--refresh]
//                                            submit the trace to a running
//                                            ppd-analyzed daemon (docs/PROTOCOL.md);
//                                            the report is byte-identical to the
//                                            offline --trace run. Bare --metrics
//                                            scrapes the daemon's live registry as
//                                            Prometheus text exposition on stdout
//   ppd-analyze --help | --version           exit 0
//
// Observability (any mode): --profile=FILE.json writes a Chrome trace-event
// profile of the run (open in Perfetto or chrome://tracing; one track per
// worker thread); --metrics=FILE writes a flat key=value metrics dump
// (aggregated across a whole --batch run); --progress emits a heartbeat to
// stderr during --batch (traces done/total, cache hits, ETA) and during
// remote --trace (the daemon's streamed stage frames).
//
// Output discipline: the report goes to stdout; everything else — progress,
// diagnostics, errors — goes to stderr, so reports stay pipeable. A --batch
// run separates reports with a "## <trace>" header line and ends with one
// machine-readable "## summary traces=N cached=C failed=F" line.
//
// Traces are untrusted input: --strict (the default) stops at the first
// malformed record with a diagnostic naming the offending line; --lenient
// drops bad records (and skips corrupt binary chunks), repairs unbalanced
// scopes at EOF, and completes a degraded analysis, reporting what was
// dropped in the diagnostics section.
//
// Exit codes: 0 success (including --help/--version); 1 I/O or connection
// error; 2 usage; 3 malformed trace; 4 analysis failure; 5 server
// overloaded (remote admission control rejected the request — retry).
//
// The report covers: the PET with hotspots, the detected patterns (primary
// first), multi-loop pipeline coefficients with the Table II reading,
// reduction candidates with inferred operators, the fork/worker/barrier
// classification of the best task-parallel scope, the ranked pattern list,
// and the derived transformation hints.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bs/benchmark.hpp"
#include "comm/comm.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/omp_codegen.hpp"
#include "core/pat_codegen.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "report/markdown.hpp"
#include "store/batch.hpp"
#include "store/format.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "support/mapped_file.hpp"
#include "support/status.hpp"
#include "svc/analysis.hpp"
#include "svc/client.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace ppd;

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadTrace = 3;
constexpr int kExitAnalysis = 4;
constexpr int kExitBusy = 5;
constexpr int kExitNoPattern = 6;

constexpr const char kVersion[] = "0.7.0";

constexpr const char kUsageText[] =
    "usage: ppd-analyze --list\n"
    "       ppd-analyze <benchmark> [--dump-trace FILE] [--markdown FILE]\n"
    "                   [--dot PREFIX] [--comm on] [--omp on] [--emit pat|omp]\n"
    "       ppd-analyze --trace FILE [--strict|--lenient] [--max-records N]\n"
    "                   [--jobs N | --jobs=N] [--emit pat|omp]\n"
    "       ppd-analyze convert IN OUT [--chunk-bytes N] [--lenient]\n"
    "       ppd-analyze --batch PATH... [--jobs N] [--cache DIR | --no-cache]\n"
    "                   [--refresh] [--strict|--lenient] [--max-records N]\n"
    "       ppd-analyze remote --socket PATH (--trace FILE | --ping | --metrics\n"
    "                   | --shutdown) [--strict|--lenient] [--max-records N]\n"
    "                   [--no-cache] [--refresh]\n"
    "       ppd-analyze --help | --version\n"
    "observability (any mode):\n"
    "       --profile=FILE.json  write a Chrome trace-event profile of the run\n"
    "       --metrics=FILE       write a flat key=value metrics dump; bare\n"
    "                            --metrics under `remote` scrapes the daemon's\n"
    "                            live registry (Prometheus text) to stdout\n"
    "       --progress           heartbeat to stderr (--batch, remote --trace)\n"
    "exit codes: 0 ok, 1 i/o or connection error, 2 usage, 3 malformed trace,\n"
    "            4 analysis failure, 5 server overloaded, 6 --emit found no pattern\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return kExitUsage;
}

/// Exit code for a Status, shared by the offline and the remote paths:
/// transport/protocol trouble is an I/O error, admission-control rejection
/// is its own retryable class, detector failures keep exit 4, and every
/// ingestion code stays exit 3.
int exit_code_for_status(const support::Status& status) {
  using support::ErrorCode;
  if (status.is_ok()) return kExitOk;
  switch (status.code()) {
    case ErrorCode::AnalysisFailed:
      return kExitAnalysis;
    case ErrorCode::Overloaded:
      return kExitBusy;
    case ErrorCode::IoError:
    case ErrorCode::ConnectionLost:
    case ErrorCode::BadFrame:
    case ErrorCode::CrcMismatch:
    case ErrorCode::OversizedFrame:
    case ErrorCode::UnsupportedVersion:
    case ErrorCode::PoolShutdown:
      return kExitIo;
    default:
      return kExitBadTrace;
  }
}

/// Cross-cutting observability flags, stripped from argv before the mode
/// dispatch so every mode accepts them uniformly.
struct ObsOptions {
  std::string profile_path;  ///< Chrome trace-event JSON destination
  std::string metrics_path;  ///< key=value metrics dump destination
  bool progress = false;     ///< batch / remote heartbeat on stderr
};

ObsOptions g_obs;

struct TraceRunOptions {
  trace::ReplayMode mode = trace::ReplayMode::Strict;
  std::uint64_t max_records = trace::ReplayLimits{}.max_records;
  std::size_t jobs = 1;
  const char* emit_backend = nullptr;  ///< "pat" or "omp"; nullptr = report
};

/// Validates the operand of --emit (shared by benchmark and --trace modes).
bool parse_emit(const char* backend) {
  if (std::strcmp(backend, "pat") == 0 || std::strcmp(backend, "omp") == 0) return true;
  std::fprintf(stderr, "--emit takes 'pat' or 'omp', not '%s'\n", backend);
  return false;
}

/// Renders the selected codegen backend for a finished analysis. The
/// generated code is the *only* stdout payload, so the output pipes
/// straight into a compiler or a .cpp file. No pattern to emit is its own
/// exit code (6), distinct from an analysis failure: the analysis itself
/// succeeded, there is just nothing to generate.
int emit_generated(const core::AnalysisResult& result, const trace::TraceContext& ctx,
                   const char* name, const char* backend) {
  if (std::strcmp(backend, "pat") == 0) {
    const std::string tu = core::pat_translation_unit(result, ctx, name);
    if (tu.empty()) {
      std::fprintf(stderr,
                   "no pattern detected in '%s': nothing to emit for the pat "
                   "backend (primary pattern: %s)\n",
                   name, core::to_string(result.primary));
      return kExitNoPattern;
    }
    std::fputs(tu.c_str(), stdout);
    return kExitOk;
  }
  const auto suggestions = core::generate_openmp(result, ctx);
  if (suggestions.empty()) {
    std::fprintf(stderr,
                 "no pattern detected in '%s': nothing to emit for the omp "
                 "backend (primary pattern: %s)\n",
                 name, core::to_string(result.primary));
    return kExitNoPattern;
  }
  for (const core::OmpSuggestion& s : suggestions) {
    std::printf("%s\n// note: %s\n\n", s.construct.c_str(), s.note.c_str());
  }
  return kExitOk;
}

/// Caps --jobs at the hardware concurrency. Extra workers past the core
/// count only add contention, so the cap was always applied in effect —
/// but silently; now it says so once on stderr and records both values in
/// the metrics dump (cli.jobs.requested / cli.jobs.effective).
bool parse_positive(const char* text, std::uint64_t& out);

std::size_t clamped_jobs(std::size_t requested) {
  const unsigned hw = std::thread::hardware_concurrency();
  obs::Registry::instance().gauge("cli.jobs.requested")
      .set(static_cast<std::int64_t>(requested));
  std::size_t effective = requested;
  if (hw != 0 && requested > hw) {
    effective = hw;
    std::fprintf(stderr,
                 "note: --jobs %zu exceeds hardware concurrency %u; using %u\n",
                 requested, hw, hw);
  }
  obs::Registry::instance().gauge("cli.jobs.effective")
      .set(static_cast<std::int64_t>(effective));
  return effective;
}

/// Parses the operand of --jobs (given either as "--jobs N" or "--jobs=N").
bool parse_jobs(const char* text, std::size_t& jobs_out) {
  std::uint64_t jobs = 0;
  if (!parse_positive(text, jobs) || jobs > 256) return false;
  jobs_out = clamped_jobs(static_cast<std::size_t>(jobs));
  return true;
}

/// `--trace F --emit pat|omp`: replay the trace, then hand the finished
/// analysis to the selected codegen backend instead of the report renderer.
int emit_from_trace_bytes(const char* path, std::string_view bytes,
                          const TraceRunOptions& run) {
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  support::DiagSink diags;
  support::Status status;
  if (store::is_binary_trace(bytes)) {
    store::ReadOptions options;
    options.mode = run.mode;
    options.diags = &diags;
    status = store::read_trace(bytes, ctx, options).status;
  } else {
    trace::ReplayOptions options;
    options.mode = run.mode;
    options.diags = &diags;
    std::istringstream in{std::string(bytes)};
    status = trace::replay_trace(in, ctx, options).status;
  }
  for (const support::Diag& d : diags.diags()) {
    std::fprintf(stderr, "  - %s\n", d.to_string().c_str());
  }
  if (!status.is_ok()) {
    std::fprintf(stderr, "cannot replay trace '%s': %s\n", path,
                 status.to_string().c_str());
    return exit_code_for_status(status);
  }
  try {
    const core::AnalysisResult result = analyzer.analyze();
    return emit_generated(result, ctx, path, run.emit_backend);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis failed: %s\n", e.what());
    return kExitAnalysis;
  }
}

int analyze_trace_file(const char* path, const TraceRunOptions& run) {
  // Mapped, not slurped: the binary reader decodes chunks straight out of
  // the page cache. The mapping outlives the analysis call below.
  support::MappedFile mapped;
  if (!mapped.open(path).is_ok()) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", path);
    return kExitIo;
  }
  if (run.emit_backend != nullptr) {
    return emit_from_trace_bytes(path, mapped.bytes(), run);
  }
  svc::AnalysisOptions options;
  options.mode = run.mode;
  options.max_records = run.max_records;
  options.jobs = run.jobs;
  const svc::AnalysisOutput output =
      svc::analyze_trace_bytes(path, mapped.bytes(), options);
  std::fputs(output.log.c_str(), stderr);
  std::fputs(output.report.c_str(), stdout);
  return exit_code_for_status(output.status);
}

// ---- convert ----------------------------------------------------------------

int convert_trace(const char* in_path, const char* out_path,
                  trace::ReplayMode mode, std::uint32_t chunk_bytes) {
  support::MappedFile mapped;
  if (!mapped.open(in_path).is_ok()) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", in_path);
    return kExitIo;
  }
  const std::string_view bytes = mapped.bytes();
  const bool from_binary = store::is_binary_trace(bytes);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write trace file '%s'\n", out_path);
    return kExitIo;
  }

  trace::TraceContext ctx;
  support::DiagSink diags;
  std::uint64_t records = 0;
  if (from_binary) {
    trace::TraceWriter writer(ctx, out);
    ctx.add_sink(&writer);
    store::ReadOptions options;
    options.mode = mode;
    options.diags = &diags;
    const store::ReadResult read = store::read_trace(bytes, ctx, options);
    if (!read.status.is_ok()) {
      std::fprintf(stderr, "conversion failed: %s\n", read.status.to_string().c_str());
      return kExitBadTrace;
    }
    records = read.records;
  } else {
    store::BinaryTraceWriter::Options writer_options;
    if (chunk_bytes != 0) writer_options.target_chunk_bytes = chunk_bytes;
    store::BinaryTraceWriter writer(ctx, out, writer_options);
    ctx.add_sink(&writer);
    trace::ReplayOptions options;
    options.mode = mode;
    options.diags = &diags;
    std::istringstream in{std::string(bytes)};
    const trace::ReplayResult replay = trace::replay_trace(in, ctx, options);
    if (!replay.status.is_ok()) {
      std::fprintf(stderr, "conversion failed: %s\n", replay.status.to_string().c_str());
      return kExitBadTrace;
    }
    records = replay.records;
  }
  if (!out.flush()) {
    std::fprintf(stderr, "cannot write trace file '%s'\n", out_path);
    return kExitIo;
  }
  std::fprintf(stderr, "converted %llu records: %s (%s) -> %s (%s)\n",
               static_cast<unsigned long long>(records), in_path,
               from_binary ? "binary" : "text", out_path,
               from_binary ? "text" : "binary");
  for (const support::Diag& d : diags.diags()) {
    std::fprintf(stderr, "  - %s\n", d.to_string().c_str());
  }
  return kExitOk;
}

// ---- batch ------------------------------------------------------------------

int run_batch(const std::vector<std::string>& inputs, const TraceRunOptions& run,
              const std::string& cache_dir, bool refresh) {
  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    for (std::string& found : store::find_traces(input)) {
      paths.push_back(std::move(found));
    }
  }
  if (paths.empty()) {
    std::fputs("no trace files found\n", stderr);
    return kExitIo;
  }

  store::BatchOptions options;
  options.jobs = run.jobs;
  options.cache_dir = cache_dir;
  options.refresh = refresh;
  {
    // Fold everything that changes the report into the cache key.
    std::string config = "ppd-analyze batch v1|";
    config += run.mode == trace::ReplayMode::Strict ? "strict" : "lenient";
    config += '|';
    config += std::to_string(run.max_records);
    options.salt = store::fnv1a64(config);
  }
  if (g_obs.progress) {
    // Heartbeat after every completed trace: done/total, cache hits, and an
    // ETA extrapolated from the mean per-trace time so far.
    const auto start = std::chrono::steady_clock::now();
    options.progress = [start](std::size_t done, std::size_t total,
                               std::size_t cache_hits) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double eta =
          done > 0 ? elapsed * static_cast<double>(total - done) /
                         static_cast<double>(done)
                   : 0.0;
      std::fprintf(stderr,
                   "progress: %zu/%zu traces, %zu cached, elapsed %.1fs, "
                   "eta %.1fs\n",
                   done, total, cache_hits, elapsed, eta);
    };
  }

  const store::AnalyzeFn analyze = [&run](const std::string& path,
                                          std::string_view bytes) {
    store::AnalyzeOutcome outcome;
    svc::AnalysisOptions per_trace;
    per_trace.mode = run.mode;
    per_trace.max_records = run.max_records;
    per_trace.jobs = 1;  // parallelism is across traces here
    svc::AnalysisOutput output = svc::analyze_trace_bytes(path, bytes, per_trace);
    outcome.status = output.status;
    outcome.report = std::move(output.report);
    outcome.log = std::move(output.log);
    outcome.cacheable = output.clean;
    return outcome;
  };

  const store::BatchSummary summary = store::analyze_batch(paths, options, analyze);
  int worst = kExitOk;
  for (std::size_t i = 0; i < summary.items.size(); ++i) {
    const store::BatchItem& item = summary.items[i];
    std::fprintf(stderr, "[%zu/%zu] %s: %s\n", i + 1, summary.items.size(),
                 item.path.c_str(),
                 item.cached ? "cached" : (item.status.is_ok() ? "analyzed" : "failed"));
    std::fputs(item.log.c_str(), stderr);
    // One "## <trace>" header per report so a concatenated batch stdout
    // splits mechanically at /^## /.
    std::printf("## %s\n", item.path.c_str());
    std::fputs(item.report.c_str(), stdout);
    const int code = exit_code_for_status(item.status);
    if (code > worst) worst = code;
  }
  std::fprintf(stderr, "analyzed %zu trace(s): %zu from cache, %zu failure(s)\n",
               summary.items.size(), summary.cache_hits, summary.failures);
  // Machine-readable batch summary, last line of stdout.
  std::printf("## summary traces=%zu cached=%zu failed=%zu\n",
              summary.items.size(), summary.cache_hits, summary.failures);
  return worst;
}

// ---- remote -----------------------------------------------------------------

/// `remote`: the thin client of a running ppd-analyzed daemon. Stream and
/// exit-code discipline match the offline modes, so scripts can switch
/// between local and remote analysis by swapping one flag.
int run_remote(int argc, char** argv) {
  std::string socket_path;
  const char* trace_path = nullptr;
  bool ping = false;
  bool metrics = false;
  bool shutdown = false;
  svc::Client::RequestOptions request;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      shutdown = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      request.mode = trace::ReplayMode::Strict;
    } else if (std::strcmp(argv[i], "--lenient") == 0) {
      request.mode = trace::ReplayMode::Lenient;
    } else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc) {
      if (!parse_positive(argv[++i], request.max_records)) return usage();
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      request.no_cache = true;
    } else if (std::strcmp(argv[i], "--refresh") == 0) {
      request.refresh = true;
    } else {
      return usage();
    }
  }
  const int actions = (trace_path != nullptr ? 1 : 0) + (ping ? 1 : 0) +
                      (metrics ? 1 : 0) + (shutdown ? 1 : 0);
  if (socket_path.empty() || actions != 1) return usage();

  svc::Client client;
  support::Status status = client.connect(socket_path, "ppd-analyze");
  if (!status.is_ok()) {
    std::fprintf(stderr, "remote: %s\n", status.to_string().c_str());
    return exit_code_for_status(status);
  }

  if (ping) {
    status = client.ping();
    if (!status.is_ok()) {
      std::fprintf(stderr, "remote: %s\n", status.to_string().c_str());
      return exit_code_for_status(status);
    }
    std::fprintf(stderr, "pong from %s (protocol v%u)\n",
                 client.server_name().c_str(), client.version());
    return kExitOk;
  }
  if (metrics) {
    // Live scrape: Prometheus text exposition on stdout, pipeable straight
    // into promtool or a node exporter's textfile collector.
    std::string text;
    status = client.metrics(svc::kMetricsFormatPrometheus, text);
    if (!status.is_ok()) {
      std::fprintf(stderr, "remote: %s\n", status.to_string().c_str());
      return exit_code_for_status(status);
    }
    std::fputs(text.c_str(), stdout);
    return kExitOk;
  }
  if (shutdown) {
    status = client.shutdown_server();
    if (!status.is_ok()) {
      std::fprintf(stderr, "remote: %s\n", status.to_string().c_str());
      return exit_code_for_status(status);
    }
    std::fputs("daemon shutdown acknowledged\n", stderr);
    return kExitOk;
  }

  support::MappedFile mapped;
  if (!mapped.open(trace_path).is_ok()) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", trace_path);
    return kExitIo;
  }
  svc::Client::ProgressFn progress;
  if (g_obs.progress) {
    progress = [](const svc::ProgressPayload& stage) {
      std::fprintf(stderr, "progress: %s (%llu/%llu)\n", stage.stage.c_str(),
                   static_cast<unsigned long long>(stage.done),
                   static_cast<unsigned long long>(stage.total));
    };
  }
  const svc::Client::Result result =
      client.analyze(mapped.bytes(), request, progress);
  std::fputs(result.log.c_str(), stderr);
  if (result.cached) std::fputs("report served from daemon cache\n", stderr);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "remote analysis failed: %s\n",
                 result.status.to_string().c_str());
    return exit_code_for_status(result.status);
  }
  std::fputs(result.report.c_str(), stdout);
  return kExitOk;
}

bool parse_positive(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) return false;
  out = value;
  return true;
}

/// The mode dispatch, over argv with the observability flags already
/// stripped. Split out of main() so profile/metrics export runs on every
/// exit path.
int run_cli(int argc, char** argv) {
  if (argc < 2) return usage();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const bs::Benchmark* b : bs::all_benchmarks()) {
      std::printf("%-14s (%s) -- paper: %s\n", b->paper().name, b->paper().suite,
                  b->paper().pattern);
    }
    return kExitOk;
  }

  if (std::strcmp(argv[1], "convert") == 0) {
    if (argc < 4) return usage();
    trace::ReplayMode mode = trace::ReplayMode::Strict;
    std::uint32_t chunk_bytes = 0;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--lenient") == 0) {
        mode = trace::ReplayMode::Lenient;
      } else if (std::strcmp(argv[i], "--strict") == 0) {
        mode = trace::ReplayMode::Strict;
      } else if (std::strcmp(argv[i], "--chunk-bytes") == 0 && i + 1 < argc) {
        std::uint64_t value = 0;
        if (!parse_positive(argv[++i], value) || value > (std::uint64_t{1} << 30)) {
          return usage();
        }
        chunk_bytes = static_cast<std::uint32_t>(value);
      } else {
        return usage();
      }
    }
    return convert_trace(argv[2], argv[3], mode, chunk_bytes);
  }

  if (std::strcmp(argv[1], "remote") == 0) {
    return run_remote(argc, argv);
  }

  if (std::strcmp(argv[1], "--trace") == 0) {
    if (argc < 3) return usage();
    TraceRunOptions run;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--strict") == 0) {
        run.mode = trace::ReplayMode::Strict;
      } else if (std::strcmp(argv[i], "--lenient") == 0) {
        run.mode = trace::ReplayMode::Lenient;
      } else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc) {
        if (!parse_positive(argv[++i], run.max_records)) return usage();
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        if (!parse_jobs(argv[++i], run.jobs)) return usage();
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        if (!parse_jobs(argv[i] + 7, run.jobs)) return usage();
      } else if (std::strcmp(argv[i], "--emit") == 0 && i + 1 < argc) {
        run.emit_backend = argv[++i];
        if (!parse_emit(run.emit_backend)) return usage();
      } else {
        return usage();
      }
    }
    return analyze_trace_file(argv[2], run);
  }

  if (std::strcmp(argv[1], "--batch") == 0) {
    if (argc < 3) return usage();
    TraceRunOptions run;
    std::vector<std::string> inputs;
    std::string cache_dir = ".ppd-cache";
    bool refresh = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--strict") == 0) {
        run.mode = trace::ReplayMode::Strict;
      } else if (std::strcmp(argv[i], "--lenient") == 0) {
        run.mode = trace::ReplayMode::Lenient;
      } else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc) {
        if (!parse_positive(argv[++i], run.max_records)) return usage();
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        if (!parse_jobs(argv[++i], run.jobs)) return usage();
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        if (!parse_jobs(argv[i] + 7, run.jobs)) return usage();
      } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
        cache_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--no-cache") == 0) {
        cache_dir.clear();
      } else if (std::strcmp(argv[i], "--refresh") == 0) {
        refresh = true;
      } else if (argv[i][0] == '-') {
        return usage();
      } else {
        inputs.emplace_back(argv[i]);
      }
    }
    if (inputs.empty()) return usage();
    return run_batch(inputs, run, cache_dir, refresh);
  }

  const bs::Benchmark* benchmark = bs::find_benchmark(argv[1]);
  if (benchmark == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n", argv[1]);
    return kExitUsage;
  }

  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);

  const char* dump_path = nullptr;
  const char* markdown_path = nullptr;
  const char* dot_prefix = nullptr;
  bool want_comm = false;
  bool want_omp = false;
  const char* emit_backend = nullptr;  // "pat" or "omp"
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--dump-trace") == 0) {
      dump_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      dot_prefix = argv[i + 1];
    } else if (std::strcmp(argv[i], "--comm") == 0) {
      want_comm = true;
    } else if (std::strcmp(argv[i], "--omp") == 0) {
      want_omp = true;
    } else if (std::strcmp(argv[i], "--emit") == 0) {
      emit_backend = argv[i + 1];
      if (!parse_emit(emit_backend)) return usage();
    } else {
      return usage();
    }
  }

  comm::CommProfiler comm_profiler;
  if (want_comm) ctx.add_sink(&comm_profiler);

  // The dump format follows the file extension: .ppdt selects the binary
  // container, anything else the text format.
  std::unique_ptr<std::ofstream> dump;
  std::unique_ptr<trace::TraceWriter> text_writer;
  std::unique_ptr<store::BinaryTraceWriter> binary_writer;
  if (dump_path != nullptr) {
    dump = std::make_unique<std::ofstream>(dump_path, std::ios::binary);
    if (!*dump) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", dump_path);
      return kExitIo;
    }
    const std::string_view path_view(dump_path);
    if (path_view.size() >= 5 && path_view.substr(path_view.size() - 5) == ".ppdt") {
      binary_writer = std::make_unique<store::BinaryTraceWriter>(ctx, *dump);
      ctx.add_sink(binary_writer.get());
    } else {
      text_writer = std::make_unique<trace::TraceWriter>(ctx, *dump);
      ctx.add_sink(text_writer.get());
    }
  }

  try {
    benchmark->run_traced(ctx);
    ctx.finish();
    const core::AnalysisResult result = analyzer.analyze();

    if (emit_backend != nullptr) {
      return emit_generated(result, ctx, benchmark->paper().name, emit_backend);
    }

    if (text_writer != nullptr || binary_writer != nullptr) {
      const std::uint64_t written = text_writer != nullptr
                                        ? text_writer->records_written()
                                        : binary_writer->records_written();
      std::fprintf(stderr, "trace written: %llu records\n",
                   static_cast<unsigned long long>(written));
    }
    std::fputs(svc::render_report(result, ctx).c_str(), stdout);

    if (want_comm) {
      std::puts("\n== Communication characterization ==");
      std::fputs(comm_profiler.build(result.profile).render(ctx).c_str(), stdout);
    }

    if (want_omp) {
      std::puts("\n== OpenMP skeletons ==");
      for (const core::OmpSuggestion& s : core::generate_openmp(result, ctx)) {
        std::printf("\n%s\n  // note: %s\n", s.construct.c_str(), s.note.c_str());
      }
    }

    if (markdown_path != nullptr) {
      std::ofstream md(markdown_path);
      md << report::markdown_report(result, ctx, benchmark->paper().name);
      std::fprintf(stderr, "markdown report written to %s\n", markdown_path);
    }
    if (dot_prefix != nullptr) {
      {
        std::ofstream pet_dot(std::string(dot_prefix) + ".pet.dot");
        pet_dot << report::pet_to_dot(result.pet);
      }
      const core::ScopeTaskParallelism* tasks = result.primary_tasks();
      if (tasks == nullptr && !result.tasks.empty()) tasks = &result.tasks.front();
      if (tasks != nullptr) {
        std::ofstream cu_dot(std::string(dot_prefix) + ".cu.dot");
        cu_dot << report::cu_graph_to_dot(tasks->graph, &tasks->tp);
      }
      std::fprintf(stderr, "Graphviz files written with prefix %s\n", dot_prefix);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis failed: %s\n", e.what());
    return kExitAnalysis;
  }
  return kExitOk;
}

/// Parses and strips the cross-cutting observability flags from argv.
/// Returns false on a malformed flag (empty path).
bool strip_obs_flags(int& argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--progress") {
      g_obs.progress = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      g_obs.profile_path = arg.substr(std::strlen("--profile="));
      if (g_obs.profile_path.empty()) return false;
    } else if (arg == "--profile" && i + 1 < argc && argv[i + 1][0] != '-') {
      g_obs.profile_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      g_obs.metrics_path = arg.substr(std::strlen("--metrics="));
      if (g_obs.metrics_path.empty()) return false;
    } else if (arg == "--metrics" && i + 1 < argc && argv[i + 1][0] != '-') {
      // A bare --metrics (last arg, or followed by another flag) is not the
      // export flag — `remote --metrics` is a live-scrape action; leave it
      // for the mode parser instead of eating the next flag as a filename.
      g_obs.metrics_path = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return true;
}

/// Best-effort export; failures demote a successful run to an I/O error.
void write_observability_file(const std::string& path, const std::string& payload,
                              const char* what, std::size_t items, int& code) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << payload;
  if (!out.flush()) {
    std::fprintf(stderr, "cannot write %s file '%s'\n", what, path.c_str());
    if (code == kExitOk) code = kExitIo;
    return;
  }
  std::fprintf(stderr, "%s written: %zu entr%s -> %s\n", what, items,
               items == 1 ? "y" : "ies", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Conventional front-door flags: anywhere on the command line, exit 0,
  // payload on stdout.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fputs(kUsageText, stdout);
      return kExitOk;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("ppd-analyze %s (ppdt container v%llu, protocol v%u)\n", kVersion,
                  static_cast<unsigned long long>(store::kFormatVersion),
                  svc::kProtocolVersion);
      return kExitOk;
    }
  }
  if (!strip_obs_flags(argc, argv)) return usage();

  // Span collection is runtime-gated: without --profile/--metrics no
  // collector is installed and every ScopedSpan in the pipeline is a
  // relaxed load. --metrics alone aggregates durations without storing
  // per-span records.
  std::unique_ptr<obs::SpanCollector> collector;
  if (!g_obs.profile_path.empty() || !g_obs.metrics_path.empty()) {
    collector =
        std::make_unique<obs::SpanCollector>(!g_obs.profile_path.empty());
    obs::install_collector(collector.get());
#if defined(PPD_OBS_DISABLED)
    std::fputs("note: built with PPD_OBS=OFF; profile/metrics will be empty\n",
               stderr);
#endif
  }

  int code = run_cli(argc, argv);

  if (collector != nullptr) {
    obs::install_collector(nullptr);
    if (!g_obs.profile_path.empty()) {
      std::vector<obs::SpanRecord> spans = collector->take();
      const std::size_t count = spans.size();
      write_observability_file(g_obs.profile_path,
                               obs::chrome_trace_json(std::move(spans)),
                               "profile", count, code);
    }
    if (!g_obs.metrics_path.empty()) {
      const std::string dump = obs::metrics_dump();
      const std::size_t lines =
          static_cast<std::size_t>(std::count(dump.begin(), dump.end(), '\n'));
      write_observability_file(g_obs.metrics_path, dump, "metrics", lines, code);
    }
  }
  return code;
}
