// ppd-analyzed: the resident analysis daemon.
//
// Listens on a Unix-domain socket and serves framed analysis requests
// (docs/PROTOCOL.md) from `ppd-analyze remote` or any client speaking the
// protocol. Reports are byte-identical to the offline tool by construction:
// both front ends call the same svc::analyze_trace_bytes.
//
// Usage:
//   ppd-analyzed --socket PATH [--jobs N] [--max-pending N]
//                [--max-request-bytes N] [--max-records N]
//                [--cache DIR | --no-cache] [--cache-budget BYTES]
//                [--quiet] [--profile=FILE.json] [--metrics=FILE]
//                [--flight-recorder=FILE]
//   ppd-analyzed --help | --version
//
// The daemon runs until SIGINT/SIGTERM or a client Shutdown frame, then
// drains in-flight requests, writes the requested profile/metrics files,
// and exits. Exit codes: 0 clean shutdown, 1 I/O error (bind/export
// failure), 2 usage.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "svc/server.hpp"

namespace {

using namespace ppd;

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;

constexpr const char kVersion[] = "0.7.0";

constexpr const char kUsageText[] =
    "usage: ppd-analyzed --socket PATH [--jobs N] [--max-pending N]\n"
    "                    [--max-request-bytes N] [--max-records N]\n"
    "                    [--cache DIR | --no-cache] [--cache-budget BYTES]\n"
    "                    [--quiet] [--profile=FILE.json] [--metrics=FILE]\n"
    "                    [--flight-recorder=FILE]\n"
    "       ppd-analyzed --help | --version\n"
    "flags:\n"
    "       --socket PATH         Unix-domain socket to listen on (required)\n"
    "       --jobs N              analysis worker threads (default 2)\n"
    "       --max-pending N       admitted-but-unfinished request bound; excess\n"
    "                             requests are rejected as overloaded (default 16)\n"
    "       --max-request-bytes N per-request frame-payload budget (default 64MiB)\n"
    "       --max-records N       server-side trace record ceiling; client\n"
    "                             requests may lower it, never raise it\n"
    "       --cache DIR           persistent report-cache directory\n"
    "                             (default .ppd-analyzed-cache)\n"
    "       --no-cache            disable the report cache\n"
    "       --cache-budget BYTES  cache eviction budget (default 256MiB)\n"
    "       --quiet               suppress per-connection stderr logging\n"
    "       --profile=FILE.json   write a Chrome trace-event profile on exit\n"
    "       --metrics=FILE        write a key=value metrics dump on exit\n"
    "       --flight-recorder=FILE keep a ring of recent spans/events and dump\n"
    "                             it (with a metrics snapshot) to FILE on a\n"
    "                             fatal signal, assert failure, or wirefault\n"
    "exit codes: 0 clean shutdown, 1 i/o error, 2 usage\n";

int usage() {
  std::fputs(kUsageText, stderr);
  return kExitUsage;
}

std::sig_atomic_t volatile g_signal = 0;

void on_signal(int signo) { g_signal = signo; }

bool parse_positive(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) return false;
  out = value;
  return true;
}

/// Best-effort export on shutdown; failure demotes exit 0 to exit 1.
void write_observability_file(const std::string& path, const std::string& payload,
                              const char* what, int& code) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << payload;
  if (!out.flush()) {
    std::fprintf(stderr, "ppd-analyzed: cannot write %s file '%s'\n", what,
                 path.c_str());
    if (code == kExitOk) code = kExitIo;
    return;
  }
  std::fprintf(stderr, "ppd-analyzed: %s written to %s\n", what, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fputs(kUsageText, stdout);
      return kExitOk;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("ppd-analyzed %s (protocol v%u)\n", kVersion,
                  svc::kProtocolVersion);
      return kExitOk;
    }
  }

  svc::Server::Options options;
  options.cache.dir = ".ppd-analyzed-cache";
  options.log_connections = true;
  std::string profile_path;
  std::string metrics_path;
  std::string flight_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (!parse_positive(argv[++i], value) || value > 256) return usage();
      options.jobs = static_cast<std::size_t>(value);
    } else if (arg == "--max-pending" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (!parse_positive(argv[++i], value) || value > 4096) return usage();
      options.max_pending = static_cast<std::size_t>(value);
    } else if (arg == "--max-request-bytes" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (!parse_positive(argv[++i], value) || value > svc::kMaxFramePayload) {
        return usage();
      }
      options.max_request_bytes = value;
    } else if (arg == "--max-records" && i + 1 < argc) {
      if (!parse_positive(argv[++i], options.max_records)) return usage();
    } else if (arg == "--cache" && i + 1 < argc) {
      options.cache.dir = argv[++i];
    } else if (arg == "--no-cache") {
      options.cache.dir.clear();
    } else if (arg == "--cache-budget" && i + 1 < argc) {
      if (!parse_positive(argv[++i], options.cache.max_bytes)) return usage();
    } else if (arg == "--quiet") {
      options.log_connections = false;
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_path = arg.substr(std::strlen("--profile="));
      if (profile_path.empty()) return usage();
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
      if (metrics_path.empty()) return usage();
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--flight-recorder=", 0) == 0) {
      flight_path = arg.substr(std::strlen("--flight-recorder="));
      if (flight_path.empty()) return usage();
    } else if (arg == "--flight-recorder" && i + 1 < argc) {
      flight_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (options.socket_path.empty()) return usage();

  if (!flight_path.empty()) {
#if defined(PPD_OBS_DISABLED)
    std::fputs(
        "ppd-analyzed: built with PPD_OBS=OFF; --flight-recorder is inert\n",
        stderr);
#else
    // Static: the recorder must outlive every recording thread, including
    // any that are still unwinding when main returns.
    static obs::FlightRecorder flight;
    obs::install_flight_recorder(&flight);
    if (!obs::enable_crash_dump(flight_path)) {
      std::fprintf(stderr, "ppd-analyzed: flight-recorder path too long: '%s'\n",
                   flight_path.c_str());
      return usage();
    }
#endif
  }

  std::unique_ptr<obs::SpanCollector> collector;
  if (!profile_path.empty() || !metrics_path.empty()) {
    collector = std::make_unique<obs::SpanCollector>(!profile_path.empty());
    obs::install_collector(collector.get());
#if defined(PPD_OBS_DISABLED)
    std::fputs(
        "ppd-analyzed: built with PPD_OBS=OFF; profile/metrics will be empty\n",
        stderr);
#endif
  }

  svc::Server server(options);
  const support::Status status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "ppd-analyzed: %s\n", status.to_string().c_str());
    return kExitIo;
  }
  std::fprintf(stderr,
               "ppd-analyzed: listening on %s (jobs=%zu, max-pending=%zu, "
               "cache=%s)\n",
               options.socket_path.c_str(), options.jobs, options.max_pending,
               options.cache.dir.empty() ? "<disabled>" : options.cache.dir.c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Poll the shutdown condition so a signal is noticed within one tick even
  // though the accept loop itself never returns from poll() for it.
  for (;;) {
    if (server.wait_for_shutdown(200)) {
      std::fputs("ppd-analyzed: shutdown requested by client\n", stderr);
      break;
    }
    if (g_signal != 0) {
      std::fprintf(stderr, "ppd-analyzed: caught signal %d, shutting down\n",
                   static_cast<int>(g_signal));
      break;
    }
  }
  server.stop();

  int code = kExitOk;
  if (collector != nullptr) {
    obs::install_collector(nullptr);
    if (!profile_path.empty()) {
      write_observability_file(profile_path,
                               obs::chrome_trace_json(collector->take()),
                               "profile", code);
    }
    if (!metrics_path.empty()) {
      write_observability_file(metrics_path, obs::metrics_dump(), "metrics",
                               code);
    }
  }
  std::fputs("ppd-analyzed: exit\n", stderr);
  return code;
}
