// Regenerates Table IV (multi-loop pipeline coefficients a, b and the
// efficiency factor e for ludcmp, reg_detect, fluidanimate) and prints the
// Table II interpretation of each detected coefficient pair.
#include <cstdio>

#include "bs/benchmark.hpp"
#include "core/multiloop_pipeline.hpp"
#include "report/tables.hpp"

int main() {
  using namespace ppd;

  std::puts("Table IV: summary of multi-loop pipeline detection (measured)\n");

  const char* apps[] = {"ludcmp", "reg_detect", "fluidanimate"};
  std::vector<report::Table4Row> rows;
  std::vector<std::string> interpretations;
  for (const char* name : apps) {
    const bs::Benchmark* benchmark = bs::find_benchmark(name);
    if (benchmark == nullptr) continue;
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
    for (const core::MultiLoopPipeline* p : traced.analysis.reported_pipelines()) {
      report::Table4Row row;
      row.application = name;
      row.a = p->fit.a;
      row.b = p->fit.b;
      row.e = p->e;
      rows.push_back(row);
      interpretations.push_back(std::string(name) + ": " +
                                core::describe_coefficients(p->fit.a, p->fit.b, 0.05));
    }
  }
  std::fputs(report::make_table4(rows).render().c_str(), stdout);

  std::puts("\nPaper's Table IV: ludcmp a=1 b=0 e=1; reg_detect a=1 b=-1 e=0.99;");
  std::puts("fluidanimate a=0.05 b=-3.50 e=0.97.\n");

  std::puts("Table II interpretation of the measured coefficients:");
  for (const std::string& s : interpretations) std::printf("  %s\n", s.c_str());

  std::puts("\nFusion classification (rot-cc / Correlation / 2mm):");
  for (const char* name : {"rot-cc", "Correlation", "2mm"}) {
    const bs::Benchmark* benchmark = bs::find_benchmark(name);
    if (benchmark == nullptr) continue;
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
    bool any_fusion = false;
    for (const core::MultiLoopPipeline* p : traced.analysis.reported_pipelines()) {
      any_fusion = any_fusion || p->fusion;
    }
    std::printf("  %-12s -> %s (primary: %s)\n", name, any_fusion ? "fusion" : "no fusion",
                traced.analysis.primary_description.c_str());
  }
  return 0;
}
