// Measured wall-clock speedup of the ppd::pat pattern primitives against
// their sequential equivalents. Results are printed as JSON to stdout and
// written to BENCH_patterns.json.
//
// The kernels are deliberately *latency-bound*: every work item parks in a
// timed wait (modeling an I/O- or stall-dominated loop body) instead of
// burning ALU cycles. On a single-core CI machine a CPU-bound kernel
// cannot speed up no matter how well the runtime schedules it; latency-
// bound items overlap their waits across worker threads, so the measured
// speedup reflects what the runtime controls — chunk claiming
// (parallel_for), partial folds combined in chunk order
// (parallel_for_reduce), farm replication with ordered merge (Pipeline),
// and work distribution over the inject queue (TaskPool) — rather than
// the machine's core count. hardware_concurrency is recorded in the JSON
// so a reader can interpret the numbers.
//
// Correctness gates the timings: every parallel configuration's
// order-sensitive checksum must equal the sequential reference, and the
// run exits non-zero unless at least one family shows > 1.5x measured
// speedup at 4 jobs (the execution-verification acceptance bar).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pat/pat.hpp"
#include "rt/thread_pool.hpp"

namespace {

using namespace ppd;

constexpr std::uint64_t kItems = 64;   // work items per pattern instance
constexpr int kItemWaitUs = 500;       // timed wait per item (the "latency")
constexpr int kReps = 3;               // timing repetitions; best (min) wins
constexpr double kSpeedupBar = 1.5;    // acceptance: > bar at 4 jobs, >= 1 family

/// The synthetic payload: cheap, deterministic, and different per item so a
/// misrouted or reordered item changes the checksum.
std::uint64_t synth(std::uint64_t i) {
  return (i * 2654435761ull + 12345ull) % 1000ull;
}

/// One latency-bound work item: park, then produce the payload.
std::uint64_t latency_item(std::uint64_t i) {
  std::this_thread::sleep_for(std::chrono::microseconds(kItemWaitUs));
  return synth(i);
}

/// Order-sensitive fold (FNV-style): catches both wrong values and wrong
/// delivery order, so it doubles as the Pipeline ordering check.
std::uint64_t checksum(const std::vector<std::uint64_t>& values) {
  std::uint64_t acc = 1469598103934665603ull;
  for (std::uint64_t v : values) acc = acc * 1099511628211ull + v;
  return acc;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// ---- family runners -------------------------------------------------------
// Each returns the checksum of its result; `pool == nullptr` is the
// sequential reference. The pool is constructed outside the timed region,
// so the numbers isolate the pattern's own scheduling, not thread spawn.

std::uint64_t run_parallel_for(rt::ThreadPool* pool) {
  std::vector<std::uint64_t> out(kItems, 0);
  if (pool == nullptr) {
    for (std::uint64_t i = 0; i < kItems; ++i) out[i] = latency_item(i);
  } else {
    pat::parallel_for(*pool, 0, kItems, [&out](std::uint64_t i) {
      out[i] = latency_item(i);
    });
  }
  return checksum(out);
}

std::uint64_t run_parallel_for_reduce(rt::ThreadPool* pool) {
  std::uint64_t sum = 0;
  if (pool == nullptr) {
    for (std::uint64_t i = 0; i < kItems; ++i) sum += latency_item(i);
  } else {
    // Guided chunking so the benchmark exercises the second chunk plan.
    pat::ForOptions options;
    options.chunking = pat::Chunking::Guided;
    options.min_chunk = 4;
    sum = pat::parallel_for_reduce(
        *pool, 0, kItems, std::uint64_t{0},
        [](std::uint64_t acc, std::uint64_t i) { return acc + latency_item(i); },
        [](std::uint64_t acc, std::uint64_t partial) { return acc + partial; },
        options);
  }
  return checksum({sum});
}

std::uint64_t run_pipeline_farm(rt::ThreadPool* pool) {
  std::vector<std::uint64_t> out;
  out.reserve(kItems);
  if (pool == nullptr) {
    for (std::uint64_t i = 0; i < kItems; ++i) out.push_back(latency_item(i));
  } else {
    // The source and sink are instant; the farm replicas carry the waits.
    // One worker hosts the source, the rest replicate the stage (run()
    // falls back to in-order sequential execution when that leaves no
    // replica worker, e.g. at 1 job).
    const std::size_t replicas =
        pool->thread_count() > 1 ? pool->thread_count() - 1 : 1;
    pat::Pipeline<std::uint64_t> pipeline(*pool);
    pipeline.farm([](std::uint64_t i) { return latency_item(i); }, replicas);
    std::uint64_t next = 0;
    pipeline.run(
        [&next]() -> std::optional<std::uint64_t> {
          if (next >= kItems) return std::nullopt;
          return next++;
        },
        [&out](std::uint64_t v) { out.push_back(v); });
  }
  return checksum(out);
}

std::uint64_t run_task_pool(rt::ThreadPool* pool) {
  std::vector<std::uint64_t> out(kItems, 0);
  if (pool == nullptr) {
    for (std::uint64_t i = 0; i < kItems; ++i) out[i] = latency_item(i);
  } else {
    pat::TaskPool tasks(*pool);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      tasks.submit([&out, i] { out[i] = latency_item(i); });
    }
    tasks.wait();
  }
  return checksum(out);
}

// ---- measurement ----------------------------------------------------------

struct Family {
  const char* name;
  const char* note;
  std::uint64_t (*run)(rt::ThreadPool*);
};

constexpr Family kFamilies[] = {
    {"parallel_for", "do-all over a static chunk plan", run_parallel_for},
    {"parallel_for_reduce", "guided chunks, partials combined in chunk order",
     run_parallel_for_reduce},
    {"pipeline_farm", "replicated farm stage with ordered merge",
     run_pipeline_farm},
    {"task_pool", "work-stealing tasks via the inject queue", run_task_pool},
};

struct Timed {
  double seconds = 0;
  std::uint64_t checksum = 0;
};

/// Best-of-kReps timing; every repetition must produce the same checksum.
Timed timed_best(std::uint64_t (*run)(rt::ThreadPool*), rt::ThreadPool* pool,
                 bool* deterministic) {
  Timed best;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t sum = run(pool);
    const double seconds = seconds_since(start);
    if (rep == 0) {
      best.seconds = seconds;
      best.checksum = sum;
    } else {
      if (sum != best.checksum) *deterministic = false;
      if (seconds < best.seconds) best.seconds = seconds;
    }
  }
  return best;
}

}  // namespace

int main() {
  const std::size_t job_counts[] = {1, 2, 4, 8};

  std::string json = "{\n";
  {
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"hardware_concurrency\": %u,\n"
                  "  \"items\": %llu, \"item_wait_us\": %d,\n"
                  "  \"kernel\": \"latency-bound: each item parks in a timed "
                  "wait, so speedup measures overlap, not core count\",\n"
                  "  \"families\": [\n",
                  std::thread::hardware_concurrency(),
                  static_cast<unsigned long long>(kItems), kItemWaitUs);
    json += buffer;
  }

  bool bar_met = false;
  bool ok = true;
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    const Family& family = kFamilies[f];
    bool deterministic = true;
    const Timed seq = timed_best(family.run, nullptr, &deterministic);

    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"family\": \"%s\", \"note\": \"%s\",\n"
                  "     \"configs\": [\n"
                  "      {\"config\": \"sequential\", \"seconds\": %.6f, "
                  "\"speedup_vs_sequential\": 1.00},\n",
                  family.name, family.note, seq.seconds);
    json += buffer;

    for (std::size_t j = 0; j < std::size(job_counts); ++j) {
      const std::size_t jobs = job_counts[j];
      rt::ThreadPool pool(jobs);
      const Timed par = timed_best(family.run, &pool, &deterministic);
      if (par.checksum != seq.checksum) {
        std::fprintf(stderr,
                     "%s at %zu jobs diverged from the sequential result\n",
                     family.name, jobs);
        ok = false;
      }
      const double speedup =
          par.seconds > 0 ? seq.seconds / par.seconds : 0.0;
      if (jobs == 4 && speedup > kSpeedupBar) bar_met = true;
      std::snprintf(buffer, sizeof(buffer),
                    "      {\"config\": \"pat_%zuj\", \"seconds\": %.6f, "
                    "\"speedup_vs_sequential\": %.2f}%s\n",
                    jobs, par.seconds, speedup,
                    j + 1 == std::size(job_counts) ? "" : ",");
      json += buffer;
    }
    if (!deterministic) {
      std::fprintf(stderr, "%s produced rep-to-rep varying checksums\n",
                   family.name);
      ok = false;
    }
    json += "     ]}";
    json += f + 1 == std::size(kFamilies) ? "\n" : ",\n";
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::ofstream out("BENCH_patterns.json", std::ios::trunc);
  out << json;
  if (!out) {
    std::fprintf(stderr, "cannot write BENCH_patterns.json\n");
    return 1;
  }
  if (!ok) return 1;
  if (!bar_met) {
    std::fprintf(stderr,
                 "no pattern family reached > %.1fx speedup at 4 jobs\n",
                 kSpeedupBar);
    return 1;
  }
  return 0;
}
