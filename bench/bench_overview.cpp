// Regenerates Table I: the mapping of algorithm-structure patterns to
// organization types and supporting structures.
#include <cstdio>

#include "core/pattern.hpp"
#include "support/table.hpp"

int main() {
  using namespace ppd;
  using core::PatternKind;

  std::puts("Table I: mapping of algorithm structure patterns to supporting structures\n");

  support::TextTable t;
  t.set_header({"Pattern", "Type", "Supporting structure"});
  for (PatternKind kind : {PatternKind::TaskParallelism, PatternKind::GeometricDecomposition,
                           PatternKind::Reduction, PatternKind::MultiLoopPipeline}) {
    t.add_row({core::to_string(kind), core::to_string(core::pattern_type(kind)),
               core::supporting_structure(kind)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nPaper Table I: Task parallelism -> Master/worker; Geometric decomposition,");
  std::puts("Reduction -> SPMD; Multi-loop pipeline -> SPMD.");
  return 0;
}
