// Ingestion throughput: text replay vs the .ppdt binary container.
//
// The binary container exists to make trace ingestion fast: varint/delta
// decode beats text parsing per event, and independent chunks let the
// decode fan out over a thread pool. This benchmark measures both effects
// on an amplified trace (the recorded stream body repeated many times —
// definitions are idempotent, so the amplified text is a valid trace):
//
//   * text replay throughput (the baseline every PR-3 user pays today),
//   * binary replay at 1/2/4/8 decode jobs.
//
// Results are printed as JSON to stdout and written to BENCH_ingest.json.
// Each configuration reports events/s and MB/s (input bytes over wall
// time); speedups are derived from the single-thread text baseline.
// Machines with few cores will show flat parallel scaling — the
// single-thread binary-vs-text ratio is the portable number.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bs/benchmark.hpp"
#include "obs/obs.hpp"
#include "prof/profiler.hpp"
#include "prof/sharded_profiler.hpp"
#include "prof/sharded_shadow.hpp"
#include "rt/thread_pool.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace ppd;

constexpr int kAmplify = 40;   // body repetitions in the amplified trace
constexpr int kReps = 3;       // timing repetitions; best (min) is reported

std::string record_text_trace(const bs::Benchmark& benchmark) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  benchmark.run_traced(ctx);
  ctx.finish();
  return out.str();
}

/// Repeats the record body of a text trace `times` times. Definitions are
/// idempotent on replay and every repetition is scope-balanced, so the
/// amplified text is itself a well-formed trace with `times` x the events.
std::string amplify(const std::string& text, int times) {
  const std::size_t eol = text.find('\n');
  const std::string header = text.substr(0, eol + 1);
  const std::string body = text.substr(eol + 1);
  std::string out = header;
  out.reserve(header.size() + body.size() * static_cast<std::size_t>(times));
  for (int i = 0; i < times; ++i) out += body;
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  double seconds = 0;
  std::uint64_t records = 0;
};

template <typename Fn>
Measurement best_of(Fn&& run) {
  Measurement best;
  for (int rep = 0; rep < kReps; ++rep) {
    const Measurement m = run();
    if (rep == 0 || m.seconds < best.seconds) best = m;
  }
  return best;
}

Measurement run_text(const std::string& text) {
  const auto start = std::chrono::steady_clock::now();
  trace::TraceContext ctx;
  std::istringstream in(text);
  const trace::ReplayResult result = trace::replay_trace(in, ctx, trace::ReplayOptions{});
  Measurement m;
  m.seconds = seconds_since(start);
  m.records = result.status.is_ok() ? result.records : 0;
  return m;
}

/// End-to-end ingest + dependence profiling: binary replay with the
/// profiler subscribed, then take(). jobs == 0 is the serial reference
/// (DependenceProfiler, inline decode); jobs >= 1 runs the sharded
/// profiler, sharing one pool between chunk decode and profiling blocks —
/// the `ppd-analyze --trace --jobs N` wiring. `dump_out`, when non-null,
/// receives the canonical profile dump (the bit-identity oracle).
Measurement run_dispatch(const std::string& binary, std::size_t jobs,
                         std::string* dump_out) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_ptr<rt::ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<rt::ThreadPool>(jobs);

  trace::TraceContext ctx;
  std::unique_ptr<prof::DependenceProfiler> serial;
  std::unique_ptr<prof::ShardedProfiler> sharded;
  if (jobs == 0) {
    serial = std::make_unique<prof::DependenceProfiler>();
    ctx.add_sink(serial.get());
  } else {
    prof::ShardedProfiler::Options options;
    options.pool = pool.get();
    sharded = std::make_unique<prof::ShardedProfiler>(options);
    ctx.add_sink(sharded.get());
  }

  store::ReadOptions options;
  options.jobs = jobs == 0 ? 1 : jobs;
  options.pool = pool.get();
  const store::ReadResult result = store::read_trace(binary, ctx, options);

  const prof::Profile profile = serial ? serial->take() : sharded->take();
  Measurement m;
  m.seconds = seconds_since(start);
  m.records = result.status.is_ok() ? result.records : 0;
  if (dump_out != nullptr) *dump_out = prof::to_debug_string(profile);
  return m;
}

Measurement run_binary(const std::string& binary, std::size_t jobs) {
  const auto start = std::chrono::steady_clock::now();
  trace::TraceContext ctx;
  store::ReadOptions options;
  options.jobs = jobs;
  const store::ReadResult result = store::read_trace(binary, ctx, options);
  Measurement m;
  m.seconds = seconds_since(start);
  m.records = result.status.is_ok() ? result.records : 0;
  return m;
}

void emit_config(std::string& json, const char* name, const Measurement& m,
                 std::size_t input_bytes, double baseline_seconds, bool last,
                 const char* speedup_key = "speedup_vs_text") {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"config\": \"%s\", \"seconds\": %.6f, "
                "\"events_per_sec\": %.0f, \"mb_per_sec\": %.2f, "
                "\"%s\": %.2f}%s\n",
                name, m.seconds,
                m.seconds > 0 ? static_cast<double>(m.records) / m.seconds : 0.0,
                m.seconds > 0
                    ? static_cast<double>(input_bytes) / (1e6 * m.seconds)
                    : 0.0,
                speedup_key,
                m.seconds > 0 ? baseline_seconds / m.seconds : 0.0,
                last ? "" : ",");
  json += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "2mm";
  const bs::Benchmark* benchmark = bs::find_benchmark(name);
  if (benchmark == nullptr) {
    std::fprintf(stderr, "benchmark %s not registered\n", name);
    return 1;
  }

  const std::string text = amplify(record_text_trace(*benchmark), kAmplify);

  // text -> binary conversion, small chunks so the decode has real fan-out.
  std::ostringstream binary_out;
  {
    trace::TraceContext ctx;
    store::BinaryTraceWriter::Options options;
    options.target_chunk_bytes = std::uint32_t{1} << 14;
    store::BinaryTraceWriter writer(ctx, binary_out, options);
    ctx.add_sink(&writer);
    std::istringstream in(text);
    const trace::ReplayResult replay =
        trace::replay_trace(in, ctx, trace::ReplayOptions{});
    if (!replay.status.is_ok()) {
      std::fprintf(stderr, "amplified trace did not replay: %s\n",
                   replay.status.to_string().c_str());
      return 1;
    }
  }
  const std::string binary = binary_out.str();

  const Measurement text_m = best_of([&] { return run_text(text); });
  if (text_m.records == 0) {
    std::fprintf(stderr, "text replay failed\n");
    return 1;
  }

  std::string json = "{\n";
  {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"benchmark\": \"%s\", \"amplify\": %d, \"events\": %llu,\n"
                  "  \"text_bytes\": %zu, \"binary_bytes\": %zu,\n"
                  "  \"configs\": [\n",
                  name, kAmplify, static_cast<unsigned long long>(text_m.records),
                  text.size(), binary.size());
    json += buffer;
  }
  emit_config(json, "text_1t", text_m, text.size(), text_m.seconds, false);

  const std::size_t job_counts[] = {1, 2, 4, 8};
  for (std::size_t i = 0; i < std::size(job_counts); ++i) {
    const std::size_t jobs = job_counts[i];
    const Measurement m = best_of([&] { return run_binary(binary, jobs); });
    if (m.records != text_m.records) {
      std::fprintf(stderr, "binary replay record mismatch at jobs=%zu\n", jobs);
      return 1;
    }
    char config[32];
    std::snprintf(config, sizeof(config), "binary_%zuj", jobs);
    emit_config(json, config, m, binary.size(), text_m.seconds,
                i + 1 == std::size(job_counts));
  }
  // One extra instrumented pass for the per-phase breakdown: an
  // aggregate-only collector (keep_spans = false) folds span durations into
  // registry histograms without storing them. The timed configs above ran
  // enabled-but-unsinked, so this pass never perturbs the guard numbers.
  obs::Registry::instance().reset();
  obs::SpanCollector collector(/*keep_spans=*/false);
  obs::install_collector(&collector);
  (void)run_binary(binary, 4);
  obs::install_collector(nullptr);

  json += "  ],\n  \"phases_binary_4j_ns\": {\n";
  bool first_phase = true;
  for (const auto& [key, value] : obs::Registry::instance().snapshot()) {
    // Keep the total time per phase: keys shaped span.<phase>_ns.sum.
    constexpr std::string_view prefix = "span.";
    constexpr std::string_view suffix = "_ns.sum";
    if (key.size() <= prefix.size() + suffix.size()) continue;
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    if (key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
    const std::string phase =
        key.substr(prefix.size(), key.size() - prefix.size() - suffix.size());
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer), "%s    \"%s\": %lld",
                  first_phase ? "" : ",\n", phase.c_str(),
                  static_cast<long long>(value));
    json += buffer;
    first_phase = false;
  }
  json += first_phase ? "  }\n}\n" : "\n  }\n}\n";

  std::fputs(json.c_str(), stdout);
  std::ofstream out("BENCH_ingest.json", std::ios::trunc);
  out << json;
  if (!out) return 1;

  // ---- dispatch-phase scaling: ingest + dependence profiling end to end ----
  //
  // The configs above measure decode only; the dispatch wall is the serial
  // profiling behind it. This section replays the same container with the
  // profiler subscribed: the serial reference (DependenceProfiler), then the
  // sharded profiler at 1/2/4/8 jobs. Every configuration's canonical
  // profile dump must equal the serial reference — the run is a bit-identity
  // check as well as a timing. Results go to BENCH_dispatch.json.
  obs::Registry::instance().reset();
  std::string reference_dump;
  const Measurement serial_m = best_of([&] {
    return run_dispatch(binary, 0, &reference_dump);
  });
  if (serial_m.records == 0 || reference_dump.empty()) {
    std::fprintf(stderr, "serial dispatch reference failed\n");
    return 1;
  }

  std::string dispatch = "{\n";
  {
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"benchmark\": \"%s\", \"events\": %llu,\n"
                  "  \"binary_bytes\": %zu, \"shards\": %zu,\n"
                  "  \"hardware_concurrency\": %u,\n"
                  "  \"configs\": [\n",
                  name, static_cast<unsigned long long>(serial_m.records),
                  binary.size(), prof::ShardedProfiler::Options{}.shards,
                  std::thread::hardware_concurrency());
    dispatch += buffer;
  }
  emit_config(dispatch, "serial_1j", serial_m, binary.size(), serial_m.seconds,
              false, "speedup_vs_serial");

  for (std::size_t i = 0; i < std::size(job_counts); ++i) {
    const std::size_t jobs = job_counts[i];
    std::string dump;
    const Measurement m = best_of([&] { return run_dispatch(binary, jobs, &dump); });
    if (m.records != serial_m.records) {
      std::fprintf(stderr, "dispatch record mismatch at jobs=%zu\n", jobs);
      return 1;
    }
    if (dump != reference_dump) {
      std::fprintf(stderr, "profile diverged from serial reference at jobs=%zu\n",
                   jobs);
      return 1;
    }
    char config[32];
    std::snprintf(config, sizeof(config), "sharded_%zuj", jobs);
    emit_config(dispatch, config, m, binary.size(), serial_m.seconds,
                i + 1 == std::size(job_counts), "speedup_vs_serial");
  }
  dispatch += "  ]\n}\n";

  std::fputs(dispatch.c_str(), stdout);
  std::ofstream dispatch_out("BENCH_dispatch.json", std::ios::trunc);
  dispatch_out << dispatch;
  return dispatch_out ? 0 : 1;
}
