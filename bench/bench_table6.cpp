// Regenerates Table VI: comparison of reduction detection across the
// modeled static baselines (Sambamba, icc) and the dynamic DiscoPoP-style
// detector. The static verdicts derive from each benchmark's statement-level
// source model; the DiscoPoP column runs the real dynamic detector on the
// instrumented kernel.
#include <cstdio>

#include "bs/benchmark.hpp"
#include "core/loop_class.hpp"
#include "report/tables.hpp"
#include "staticdet/source_model.hpp"

int main() {
  using namespace ppd;

  std::puts("Table VI: comparison of reduction detection results\n");

  const staticdet::SambambaStyleDetector sambamba;
  const staticdet::IccStyleDetector icc;

  const char* apps[] = {"nqueens", "kmeans", "bicg", "gesummv", "sum_local", "sum_module"};
  std::vector<report::Table6Column> columns;
  for (const char* name : apps) {
    const bs::Benchmark* benchmark = bs::find_benchmark(name);
    if (benchmark == nullptr) continue;
    const auto model = benchmark->reduction_source_model();
    if (!model.has_value()) continue;

    report::Table6Column col;
    col.benchmark = name;
    col.sambamba = staticdet::to_string(sambamba.detect(*model));
    col.icc = staticdet::to_string(icc.detect(*model));

    // Dynamic detection: run the real pipeline and ask Algorithm 3.
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
    col.discopop = traced.analysis.reductions.empty() ? "no" : "yes";
    columns.push_back(col);
  }
  std::fputs(report::make_table6(columns).render().c_str(), stdout);

  std::puts("\nPaper's Table VI: Sambamba NA NA yes yes yes no; icc all no except");
  std::puts("sum_local; DiscoPoP yes on all six.");
  return 0;
}
