// Regenerates Table V: task-parallelism summary — total instructions,
// instructions on the critical path, and the estimated speedup
// (total / critical path) for fib, sort, strassen, 3mm, mvt, fdtd-2d.
#include <cstdio>

#include "bs/benchmark.hpp"
#include "report/tables.hpp"

int main() {
  using namespace ppd;

  std::puts("Table V: summary of task parallelism pattern detection (measured)\n");

  const char* apps[] = {"fib", "sort", "strassen", "3mm", "mvt", "fdtd-2d"};
  std::vector<report::Table5Row> rows;
  for (const char* name : apps) {
    const bs::Benchmark* benchmark = bs::find_benchmark(name);
    if (benchmark == nullptr) continue;
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
    const core::ScopeTaskParallelism* tasks = traced.analysis.primary_tasks();
    if (tasks == nullptr) {
      // Fall back to the best task-parallel scope found, even if another
      // pattern won the primary slot.
      for (const core::ScopeTaskParallelism& t : traced.analysis.tasks) {
        if (tasks == nullptr ||
            t.tp.estimated_speedup > tasks->tp.estimated_speedup) {
          tasks = &t;
        }
      }
    }
    if (tasks == nullptr) continue;
    report::Table5Row row;
    row.application = name;
    row.total_instructions = tasks->tp.total_cost;
    row.critical_path = tasks->tp.critical_path_cost;
    row.estimated_speedup = tasks->tp.estimated_speedup;
    rows.push_back(row);
  }
  std::fputs(report::make_table5(rows).render().c_str(), stdout);

  std::puts("\nPaper's Table V: fib 52/16 = 3.25; sort 2478/1172 = 2.11;");
  std::puts("strassen 11722739/3349354 = 3.5; 3mm 3293952/2195968 = 1.5;");
  std::puts("mvt 9600/4896 = 1.96; fdtd-2d 137560/63309 = 2.17.");
  std::puts("\nNote: absolute instruction counts differ (our cost model is the");
  std::puts("abstract work measure of DESIGN.md); the ratio column is the");
  std::puts("comparable quantity.");
  return 0;
}
