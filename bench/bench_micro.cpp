// Google-benchmark microbenchmarks for the substrates: instrumentation
// dispatch, shadow-memory dependence profiling, CU-graph construction,
// linear regression, and the virtual-time scheduler.
#include <benchmark/benchmark.h>

#include <sstream>

#include "bs/benchmark.hpp"
#include "comm/comm.hpp"
#include "obs/obs.hpp"
#include "cu/builder.hpp"
#include "pat/task_pool.hpp"
#include "pet/pet.hpp"
#include "prof/profiler.hpp"
#include "regress/linreg.hpp"
#include "rt/thread_pool.hpp"
#include "sim/lowering.hpp"
#include "sim/task_dag.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace ppd;

void BM_TraceDispatch(benchmark::State& state) {
  for (auto _ : state) {
    trace::TraceContext ctx;
    prof::DependenceProfiler profiler;
    ctx.add_sink(&profiler);
    const VarId v = ctx.var("v");
    trace::FunctionScope f(ctx, "f", 1);
    trace::LoopScope l(ctx, "l", 2);
    for (int i = 0; i < 1024; ++i) {
      l.begin_iteration();
      ctx.write(v, static_cast<std::uint64_t>(i), 3);
      ctx.read(v, static_cast<std::uint64_t>(i), 4);
    }
    benchmark::DoNotOptimize(profiler.dependence_count());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_TraceDispatch);

void BM_ShadowProfilerCarried(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    trace::TraceContext ctx;
    prof::DependenceProfiler profiler;
    ctx.add_sink(&profiler);
    const VarId v = ctx.var("sum");
    trace::LoopScope l(ctx, "l", 1);
    for (std::int64_t i = 0; i < n; ++i) {
      l.begin_iteration();
      ctx.read(v, 0, 2);
      ctx.write(v, 0, 2);
    }
    benchmark::DoNotOptimize(profiler.shadow_bytes());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_ShadowProfilerCarried)->Arg(1024)->Arg(16384);

void BM_LinearRegression(benchmark::State& state) {
  std::vector<prof::IterPair> pairs;
  for (std::uint64_t i = 0; i < 4096; ++i) pairs.push_back({i, i / 20});
  for (auto _ : state) {
    const regress::LinearFit fit = regress::fit(pairs);
    benchmark::DoNotOptimize(fit.a);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LinearRegression);

void BM_ListScheduler(benchmark::State& state) {
  const std::int64_t workers = state.range(0);
  sim::DagBuilder builder;
  auto x = builder.lower_loop(1024, 1 << 16, core::LoopClass::DoAll, 256);
  auto y = builder.lower_loop(1024, 1 << 16, core::LoopClass::Sequential, 256);
  std::vector<prof::IterPair> pairs;
  for (std::uint64_t i = 0; i < 1024; ++i) pairs.push_back({i, i});
  builder.link_pairs(x, y, pairs);
  const sim::TaskDag dag = builder.take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_makespan(dag, static_cast<std::size_t>(workers)));
  }
}
BENCHMARK(BM_ListScheduler)->Arg(2)->Arg(8)->Arg(32);

void BM_CriticalPath(benchmark::State& state) {
  graph::Digraph g;
  const int n = 512;
  for (int i = 0; i < n; ++i) g.add_node(static_cast<Cost>(i % 17 + 1));
  for (int i = 0; i < n; ++i) {
    for (int d = 1; d <= 3 && i + d < n; ++d) {
      g.add_edge(static_cast<graph::NodeIndex>(i), static_cast<graph::NodeIndex>(i + d));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.critical_path().weight);
  }
}
BENCHMARK(BM_CriticalPath);

void BM_CuFormation(benchmark::State& state) {
  // Formation cost over the fib benchmark's recorded sites.
  trace::TraceContext ctx;
  cu::CuFacts facts(ctx);
  ctx.add_sink(&facts);
  bs::find_benchmark("fib")->run_traced(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cu::form_cus(facts, ctx));
  }
}
BENCHMARK(BM_CuFormation);

void BM_FullAnalysis(benchmark::State& state) {
  // End-to-end: instrument + profile + detect on a mid-size benchmark.
  const bs::Benchmark* benchmark_ptr = bs::find_benchmark("reg_detect");
  for (auto _ : state) {
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark_ptr);
    benchmark::DoNotOptimize(traced.analysis.primary);
  }
}
BENCHMARK(BM_FullAnalysis);

void BM_TraceSerializeReplay(benchmark::State& state) {
  // Round-trip cost of the §III-A dump/post-analysis workflow.
  std::ostringstream recorded;
  {
    trace::TraceContext ctx;
    trace::TraceWriter writer(ctx, recorded);
    ctx.add_sink(&writer);
    bs::find_benchmark("sum_local")->run_traced(ctx);
    ctx.finish();
  }
  const std::string text = recorded.str();
  for (auto _ : state) {
    std::istringstream in(text);
    trace::TraceContext ctx;
    prof::DependenceProfiler profiler;
    ctx.add_sink(&profiler);
    benchmark::DoNotOptimize(trace::replay_trace(in, ctx));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_TraceSerializeReplay);

// ---- ThreadPool task-dispatch overhead ------------------------------------
// The floor under every ppd::pat primitive: what one task costs to submit,
// schedule, execute, and retire. Bodies are empty, so items/s inverts
// directly to per-task ns, and the whole round-trip is queue traffic —
// rising per-task time as the worker count grows is contention on the
// pool's one mutex-guarded FIFO, not compute.

constexpr int kDispatchTasks = 4096;

void BM_ThreadPoolTaskDispatch(benchmark::State& state) {
  rt::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rt::TaskGroup group(pool);
    for (int i = 0; i < kDispatchTasks; ++i) group.run([] {});
    group.wait();
  }
  state.SetItemsProcessed(state.iterations() * kDispatchTasks);
}
BENCHMARK(BM_ThreadPoolTaskDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Queue contention with producers on both sides: half the tasks are seeded
// from the driver, each seed submits one follow-up from inside its worker,
// so the workers push and pop the shared queue concurrently with the
// driver's submissions — the access pattern a task-parallel pattern
// generates, as opposed to the batch-submit pattern above.
void BM_ThreadPoolQueueContention(benchmark::State& state) {
  rt::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rt::TaskGroup group(pool);
    for (int i = 0; i < kDispatchTasks / 2; ++i) {
      group.run([&group] { group.run([] {}); });
    }
    group.wait();
  }
  state.SetItemsProcessed(state.iterations() * kDispatchTasks);
}
BENCHMARK(BM_ThreadPoolQueueContention)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The same worker-side spawn stream through pat::TaskPool: children go to
// the spawning worker's own deque (LIFO pop, FIFO steal), so the shared
// queue is touched only by the driver's seeds. The gap to
// BM_ThreadPoolQueueContention is what the per-worker deques buy.
void BM_PatTaskPoolDispatch(benchmark::State& state) {
  rt::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pat::TaskPool tasks(pool);
    for (int i = 0; i < kDispatchTasks / 2; ++i) {
      tasks.submit([&tasks] { tasks.submit([] {}); });
    }
    tasks.wait();
  }
  state.SetItemsProcessed(state.iterations() * kDispatchTasks);
}
BENCHMARK(BM_PatTaskPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Registry hot path: full by-name lookup (map probe under the shared
// registry mutex) vs the per-thread handle cache (one thread-local probe,
// registry touched only on a thread's first use of a name) vs a
// pre-resolved reference (the floor). Single-threaded, the cache saves
// only the uncontended lock; the threaded rows are the real story — every
// by-name worker serializes on the registry mutex while the handle cache
// scales flat, which is why daemon worker-loop call sites go through
// counter_handle & co.
void BM_ObsRegistryLookup(benchmark::State& state) {
  obs::Registry& registry = obs::Registry::instance();
  for (auto _ : state) {
    registry.counter("bench.micro.obs.lookup").add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryLookup)->Threads(1)->Threads(4);

void BM_ObsCounterHandleCache(benchmark::State& state) {
  for (auto _ : state) {
    obs::counter_handle("bench.micro.obs.handle").add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterHandleCache)->Threads(1)->Threads(4);

void BM_ObsCounterPreResolved(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::instance().counter("bench.micro.obs.resolved");
  for (auto _ : state) {
    counter.add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterPreResolved)->Threads(1)->Threads(4);

void BM_CommMatrix(benchmark::State& state) {
  trace::TraceContext ctx;
  prof::DependenceProfiler profiler;
  comm::CommProfiler comm_profiler;
  ctx.add_sink(&profiler);
  ctx.add_sink(&comm_profiler);
  bs::find_benchmark("3mm")->run_traced(ctx);
  const prof::Profile profile = profiler.take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm_profiler.build(profile));
  }
}
BENCHMARK(BM_CommMatrix);

}  // namespace

BENCHMARK_MAIN();
