// Regenerates Table III: overall pattern detection results for the 17
// applications — detected pattern, hotspot share of executed cost, and the
// best speedup/thread count of the implemented parallel version under the
// virtual-time simulator (see DESIGN.md: the build machine is single-core,
// so the speedup column replays the profiled dependence structure under P
// virtual workers rather than timing real threads).
#include <cstdio>
#include <string>

#include "bs/benchmark.hpp"
#include "report/tables.hpp"
#include "sim/task_dag.hpp"
#include "support/table.hpp"

int main() {
  using namespace ppd;

  std::puts("Table III: overall pattern detection results (measured)\n");

  std::vector<report::Table3Row> measured;
  std::vector<report::Table3Row> paper;
  for (const bs::Benchmark* benchmark : bs::all_benchmarks()) {
    const bs::PaperRow& row = benchmark->paper();
    if (std::string(row.suite) == "synthetic") continue;  // Table VI only

    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
    const sim::TaskDag dag = benchmark->build_sim_dag(traced.analysis);
    const sim::SimParams params = benchmark->sim_params(traced.analysis);
    const sim::SweepResult sweep = sim::sweep_threads(dag, params);

    report::Table3Row m;
    m.application = row.name;
    m.suite = row.suite;
    m.loc = row.loc;  // LOC of the original application (metadata)
    m.hotspot_pct = traced.analysis.hotspot_cost_fraction * 100.0;
    m.speedup = sweep.best.speedup;
    m.threads = static_cast<int>(sweep.best.threads);
    m.pattern = traced.analysis.primary_description;
    measured.push_back(m);

    report::Table3Row p;
    p.application = row.name;
    p.suite = row.suite;
    p.loc = row.loc;
    p.hotspot_pct = row.hotspot_pct;
    p.speedup = row.speedup;
    p.threads = row.threads;
    p.pattern = row.pattern;
    paper.push_back(p);
  }

  std::fputs(report::make_table3(measured).render().c_str(), stdout);
  std::puts("\nPaper's Table III for comparison:\n");
  std::fputs(report::make_table3(paper).render().c_str(), stdout);

  int pattern_matches = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (measured[i].pattern == paper[i].pattern) ++pattern_matches;
  }
  std::printf("\nDetected-pattern agreement with the paper: %d / %zu applications\n",
              pattern_matches, measured.size());
  return 0;
}
