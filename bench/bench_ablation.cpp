// Ablation study for the design choices DESIGN.md calls out.
//
// Each section toggles one mechanism off and shows what breaks:
//
//  1. Reduction address refinement (§III-D + our dynamic refinement):
//     without it, Algorithm 3's plain line test misclassifies single-visit
//     stencil chains (reg_detect's path recurrence) as reductions.
//  2. Cross-activation dependence filtering (recursion merging): without
//     it, the value-return edges of recursive benchmarks close cycles in
//     the CU graph, collapsing the estimated speedup of fib/sort/strassen.
//  3. Blocking-efficiency threshold (§III-A, e ~ 0): with the threshold
//     disabled, 3mm's blocked producer pair is reported as a pipeline and
//     steals the primary-pattern slot from task parallelism.
//  4. Hotspot threshold: with an indiscriminate 0% threshold, cold loop
//     pairs flood the pipeline detector.
#include <cstdio>

#include "bs/benchmark.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "cu/builder.hpp"
#include "support/table.hpp"

using namespace ppd;

namespace {

void section(const char* title) { std::printf("\n==== %s ====\n\n", title); }

}  // namespace

int main() {
  std::puts("Ablation study: each mechanism off vs. on");

  // --- 1. reduction address refinement ---------------------------------------
  section("1. Reduction address refinement (reg_detect stencil chain)");
  {
    const bs::Benchmark* reg_detect = bs::find_benchmark("reg_detect");
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*reg_detect);
    const RegionId path_loop = traced.ctx->find_region("reg_detect_L2");
    const auto with = core::detect_reductions(traced.analysis.profile, path_loop, true);
    const auto without = core::detect_reductions(traced.analysis.profile, path_loop, false);
    std::printf("reg_detect path loop: %zu candidate(s) with refinement, %zu without\n",
                with.size(), without.size());
    std::printf("-> %s\n", without.size() > with.size()
                               ? "without the refinement, the path[i][j] = path[i-1][j-1] "
                                 "recurrence is a false reduction"
                               : "no difference (unexpected)");

    // Sanity: a real reduction keeps its candidate either way.
    const bs::Benchmark* bicg = bs::find_benchmark("bicg");
    const bs::TracedAnalysis bicg_traced = bs::analyze_benchmark(*bicg);
    const RegionId bicg_loop = bicg_traced.ctx->find_region("bicg_loop");
    std::printf("bicg loop: %zu with refinement, %zu without (true reductions survive)\n",
                core::detect_reductions(bicg_traced.analysis.profile, bicg_loop, true).size(),
                core::detect_reductions(bicg_traced.analysis.profile, bicg_loop, false).size());
  }

  // --- 2. cross-activation filtering -----------------------------------------
  section("2. Cross-activation dependence filter (recursive task benchmarks)");
  {
    support::TextTable t;
    t.set_header({"Application", "est. speedup (filtered)", "est. speedup (unfiltered)"});
    t.set_alignment({support::Align::Left, support::Align::Right, support::Align::Right});
    for (const char* name : {"fib", "sort", "strassen"}) {
      const bs::Benchmark* benchmark = bs::find_benchmark(name);
      const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
      const pet::NodeIndex scope =
          traced.analysis.hotspot_node;  // the recursive hotspot function
      const cu::CuGraph filtered =
          cu::build_cu_graph(traced.analysis.cus, traced.analysis.profile,
                             traced.analysis.pet, scope, *traced.ctx, true);
      const cu::CuGraph unfiltered =
          cu::build_cu_graph(traced.analysis.cus, traced.analysis.profile,
                             traced.analysis.pet, scope, *traced.ctx, false);
      const auto tp_f = core::detect_task_parallelism(filtered);
      const auto tp_u = core::detect_task_parallelism(unfiltered);
      t.add_row({name, support::format_fixed(tp_f.estimated_speedup, 2),
                 support::format_fixed(tp_u.estimated_speedup, 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("-> unfiltered value-return edges close cycles; the SCC condensation puts");
    std::puts("   the whole recursion on the critical path and the speedup collapses.");
  }

  // --- 3. blocking-efficiency threshold ---------------------------------------
  section("3. Blocking-efficiency threshold (3mm)");
  {
    const bs::Benchmark* three_mm = bs::find_benchmark("3mm");
    for (double threshold : {0.1, 0.0}) {
      core::AnalyzerConfig config;
      config.pipeline.blocking_efficiency = threshold;
      const bs::TracedAnalysis traced = bs::analyze_benchmark(*three_mm, config);
      std::printf("blocking_efficiency = %.2f -> primary pattern: %s\n", threshold,
                  traced.analysis.primary_description.c_str());
    }
    std::puts("-> without the threshold, the (E-loop, G-loop) pair with e = 1 is reported");
    std::puts("   even though the (F-loop, G-loop) pair has e = 0 and blocks any pipeline;");
    std::puts("   the paper reports 3mm as task parallelism, not a pipeline.");
  }

  // --- 4. hotspot threshold ----------------------------------------------------
  section("4. Hotspot threshold (kmeans)");
  {
    const bs::Benchmark* kmeans = bs::find_benchmark("kmeans");
    for (double fraction : {0.02, 0.0}) {
      core::AnalyzerConfig config;
      config.hotspot_fraction = fraction;
      config.pipeline.hotspot_fraction = fraction;
      const bs::TracedAnalysis traced = bs::analyze_benchmark(*kmeans, config);
      std::printf("hotspot_fraction = %.2f -> primary: %s, %zu pipeline pair(s) analyzed\n",
                  fraction, traced.analysis.primary_description.c_str(),
                  traced.analysis.pipelines.size());
    }
    std::puts("-> with no hotspot filter, cold loop pairs inside the ~2% hotspot are");
    std::puts("   promoted to pipeline candidates (the paper analyzes hotspot pairs only).");
  }

  return 0;
}
