// Observability overhead guard: span-on vs span-off trace ingest.
//
// The telemetry story of the resident daemon only holds if always-on
// instrumentation is close to free. This benchmark runs the same
// chunk-parallel binary ingest + sharded dependence profiling twice over
// an amplified trace — once with no span sink installed (the ScopedSpan
// fast path: two relaxed atomic loads per macro), once fully armed the
// way ppd-analyzed runs in production: an aggregate-only SpanCollector, a
// flight-recorder ring, and an active request TraceContext propagated
// through the thread pool — and gates the relative slowdown.
//
// Results are printed as JSON to stdout and written to BENCH_obs.json.
// The exit status is the gate: overhead above kMaxOverheadPct fails the
// run (and CI with it). Timing is best-of-kReps minimums, which is stable
// enough for a single-digit-percent guard on a quiet machine.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bs/benchmark.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "prof/sharded_profiler.hpp"
#include "rt/thread_pool.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace ppd;

constexpr int kAmplify = 40;        // body repetitions in the amplified trace
constexpr int kReps = 5;            // timing repetitions; best (min) is kept
constexpr std::size_t kJobs = 2;    // decode/profile fan-out per run
constexpr double kMaxOverheadPct = 3.0;

std::string record_text_trace(const bs::Benchmark& benchmark) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  benchmark.run_traced(ctx);
  ctx.finish();
  return out.str();
}

/// Repeats the record body of a text trace; see bench_ingest.cpp for why
/// the amplified text is itself a well-formed trace.
std::string amplify(const std::string& text, int times) {
  const std::size_t eol = text.find('\n');
  const std::string header = text.substr(0, eol + 1);
  const std::string body = text.substr(eol + 1);
  std::string out = header;
  out.reserve(header.size() + body.size() * static_cast<std::size_t>(times));
  for (int i = 0; i < times; ++i) out += body;
  return out;
}

struct Measurement {
  double seconds = 0;
  std::uint64_t records = 0;
};

/// One end-to-end ingest: chunked binary decode fanned out over a fresh
/// pool, sharded dependence profiling subscribed — the span-densest path
/// a daemon request takes.
Measurement run_ingest(const std::string& binary) {
  const auto start = std::chrono::steady_clock::now();
  rt::ThreadPool pool(kJobs);
  trace::TraceContext ctx;
  prof::ShardedProfiler::Options profiler_options;
  profiler_options.pool = &pool;
  prof::ShardedProfiler profiler(profiler_options);
  ctx.add_sink(&profiler);

  store::ReadOptions options;
  options.jobs = kJobs;
  options.pool = &pool;
  const store::ReadResult result = store::read_trace(binary, ctx, options);
  const prof::Profile profile = profiler.take();
  (void)profile;

  Measurement m;
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  m.records = result.status.is_ok() ? result.records : 0;
  return m;
}

template <typename Setup, typename Teardown>
Measurement best_of(const std::string& binary, Setup&& setup,
                    Teardown&& teardown) {
  Measurement best;
  for (int rep = 0; rep < kReps; ++rep) {
    setup();
    const Measurement m = run_ingest(binary);
    teardown();
    if (rep == 0 || m.seconds < best.seconds) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "2mm";
  const bs::Benchmark* benchmark = bs::find_benchmark(name);
  if (benchmark == nullptr) {
    std::fprintf(stderr, "benchmark %s not registered\n", name);
    return 1;
  }

  const std::string text = amplify(record_text_trace(*benchmark), kAmplify);
  std::ostringstream binary_out;
  {
    trace::TraceContext ctx;
    store::BinaryTraceWriter::Options options;
    options.target_chunk_bytes = std::uint32_t{1} << 14;
    store::BinaryTraceWriter writer(ctx, binary_out, options);
    ctx.add_sink(&writer);
    std::istringstream in(text);
    const trace::ReplayResult replay =
        trace::replay_trace(in, ctx, trace::ReplayOptions{});
    if (!replay.status.is_ok()) {
      std::fprintf(stderr, "amplified trace did not replay: %s\n",
                   replay.status.to_string().c_str());
      return 1;
    }
  }
  const std::string binary = binary_out.str();

  // Warm-up: fault the trace bytes and code paths in before timing.
  (void)run_ingest(binary);

  // spans off: no sink installed, no active trace — every PPD_OBS_SPAN
  // reduces to its disarmed fast path.
  const Measurement off =
      best_of(binary, [] {}, [] {});
  if (off.records == 0) {
    std::fprintf(stderr, "span-off ingest failed\n");
    return 1;
  }

  // spans on: the production daemon arming — aggregate-only collector,
  // flight ring, and a live request trace context that ThreadPool::submit
  // propagates to every decode/profile block.
  obs::SpanCollector collector(/*keep_spans=*/false);
  obs::FlightRecorder flight;
  std::unique_ptr<obs::WithTrace> request_trace;
  const Measurement on = best_of(
      binary,
      [&] {
        obs::Registry::instance().reset();
        obs::install_collector(&collector);
        obs::install_flight_recorder(&flight);
        request_trace = std::make_unique<obs::WithTrace>(
            obs::TraceContext{obs::mint_id(), 0});
      },
      [&] {
        request_trace.reset();
        obs::install_flight_recorder(nullptr);
        obs::install_collector(nullptr);
      });
  if (on.records != off.records) {
    std::fprintf(stderr, "span-on ingest record mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(on.records),
                 static_cast<unsigned long long>(off.records));
    return 1;
  }

  const double overhead_pct =
      off.seconds > 0 ? (on.seconds / off.seconds - 1.0) * 100.0 : 0.0;
#if defined(PPD_OBS_DISABLED)
  const bool gated = false;  // nothing to gate: spans compile to nothing
#else
  const bool gated = true;
#endif
  const bool pass = !gated || overhead_pct <= kMaxOverheadPct;

  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"benchmark\": \"%s\", \"amplify\": %d, \"events\": %llu,\n"
      "  \"jobs\": %zu, \"reps\": %d,\n"
      "  \"spans_off_seconds\": %.6f,\n"
      "  \"spans_on_seconds\": %.6f,\n"
      "  \"overhead_pct\": %.2f,\n"
      "  \"gate_max_overhead_pct\": %.1f,\n"
      "  \"gated\": %s,\n"
      "  \"pass\": %s\n"
      "}\n",
      name, kAmplify, static_cast<unsigned long long>(off.records), kJobs,
      kReps, off.seconds, on.seconds, overhead_pct, kMaxOverheadPct,
      gated ? "true" : "false", pass ? "true" : "false");

  std::fputs(buffer, stdout);
  std::ofstream json_file("BENCH_obs.json", std::ios::trunc);
  json_file << buffer;

  if (!pass) {
    std::fprintf(stderr,
                 "obs overhead gate FAILED: %.2f%% > %.1f%% (span-on %.3fs vs "
                 "span-off %.3fs)\n",
                 overhead_pct, kMaxOverheadPct, on.seconds, off.seconds);
    return 1;
  }
  return 0;
}
