// Reproduces Figure 3: the CU graph of cilksort() from the BOTS `sort`
// benchmark, with Algorithm 1's fork/worker/barrier classification and the
// parallel-barrier check.
//
// Build & run:  ./build/examples/cilksort_taskgraph
#include <cstdio>

#include "bs/benchmark.hpp"
#include "core/task_parallelism.hpp"
#include "cu/builder.hpp"

using namespace ppd;

int main() {
  const bs::Benchmark* sort_benchmark = bs::find_benchmark("sort");
  if (sort_benchmark == nullptr) {
    std::puts("sort benchmark not registered");
    return 1;
  }

  const bs::TracedAnalysis traced = bs::analyze_benchmark(*sort_benchmark);
  const pet::NodeIndex cilksort =
      traced.analysis.pet.find(traced.ctx->find_region("cilksort"));
  const cu::CuGraph graph = cu::build_cu_graph(traced.analysis.cus, traced.analysis.profile,
                                               traced.analysis.pet, cilksort, *traced.ctx);
  const core::TaskParallelism tp = core::detect_task_parallelism(graph);

  std::puts("== CU graph of cilksort() (Fig. 3) ==\n");
  std::fputs(graph.render().c_str(), stdout);

  std::puts("\n== Algorithm 1 classification ==\n");
  std::fputs(tp.render(graph).c_str(), stdout);

  std::printf("\nTotal cost %llu, critical path %llu, estimated speedup %.2f\n",
              static_cast<unsigned long long>(tp.total_cost),
              static_cast<unsigned long long>(tp.critical_path_cost), tp.estimated_speedup);
  std::puts("\nPaper (Fig. 3): CU_0 forks CU_1..CU_4; CU_5 is a barrier for CU_1, CU_2;");
  std::puts("CU_6 for CU_3, CU_4; CU_7 for CU_5, CU_6; CU_5 and CU_6 can run in parallel.");
  return 0;
}
