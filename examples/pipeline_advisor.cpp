// Pipeline advisor: runs multi-loop pipeline detection on three kernels
// with different inter-loop relationships and prints, for each, the
// regression line, the efficiency factor, the Table II interpretation, and
// what to do about it (pipeline / fuse / leave alone) — the workflow §III-A
// proposes for programmers.
//
// Build & run:  ./build/examples/pipeline_advisor
#include <cstdio>
#include <functional>

#include "core/analyzer.hpp"
#include "trace/context.hpp"

using namespace ppd;

namespace {

void analyze_kernel(const char* title,
                    const std::function<void(trace::TraceContext&)>& kernel) {
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  kernel(ctx);
  const core::AnalysisResult result = analyzer.analyze();

  std::printf("== %s ==\n", title);
  if (result.pipelines.empty()) {
    std::puts("no multi-loop relationship between hotspot loops\n");
    return;
  }
  for (const core::MultiLoopPipeline& p : result.pipelines) {
    std::printf("loops %s -> %s: Y = %.2f X + %.2f over %zu pairs, e = %.2f\n",
                ctx.region(p.loop_x).name.c_str(), ctx.region(p.loop_y).name.c_str(),
                p.fit.a, p.fit.b, p.samples(), p.e);
    std::printf("  %s\n", core::describe_coefficients(p.fit.a, p.fit.b, 0.05).c_str());
    if (p.fusion) {
      std::puts("  advice: both loops are do-all with a 1:1 dependence -> fuse and");
      std::puts("          parallelize the fused loop as a do-all.");
    } else if (p.blocked || p.e < 0.1) {
      std::puts("  advice: the consumer waits for (nearly) all of the producer ->");
      std::puts("          pipelining buys nothing; treat the region as a task graph.");
    } else {
      std::printf("  advice: implement a 2-stage pipeline (stage 1 %s).\n",
                  p.x_class == core::LoopClass::DoAll ? "additionally as a do-all"
                                                      : "sequential");
    }
  }
  std::printf("primary pattern: %s\n\n", result.primary_description.c_str());
}

}  // namespace

int main() {
  // Kernel A: perfect 1:1 pipeline into a recurrence (the ludcmp shape).
  analyze_kernel("A: do-all producer feeding a recurrence", [](trace::TraceContext& ctx) {
    const VarId b = ctx.var("b");
    const VarId y = ctx.var("y");
    trace::FunctionScope f(ctx, "kernel", 1);
    {
      trace::LoopScope l1(ctx, "produce", 2);
      for (std::uint64_t i = 0; i < 64; ++i) {
        l1.begin_iteration();
        ctx.compute(3, 16);
        ctx.write(b, i, 3);
      }
    }
    {
      trace::LoopScope l2(ctx, "solve", 5);
      for (std::uint64_t i = 0; i < 64; ++i) {
        l2.begin_iteration();
        ctx.read(b, i, 6);
        if (i > 0) ctx.read(y, i - 1, 6);
        ctx.write(y, i, 6);
      }
    }
  });

  // Kernel B: both loops do-all, 1:1 -> fusion.
  analyze_kernel("B: two do-all loops, element-wise", [](trace::TraceContext& ctx) {
    const VarId t = ctx.var("t");
    const VarId out = ctx.var("out");
    trace::FunctionScope f(ctx, "kernel", 1);
    {
      trace::LoopScope l1(ctx, "scale", 2);
      for (std::uint64_t i = 0; i < 64; ++i) {
        l1.begin_iteration();
        ctx.compute(3, 4);
        ctx.write(t, i, 3);
      }
    }
    {
      trace::LoopScope l2(ctx, "offset", 5);
      for (std::uint64_t i = 0; i < 64; ++i) {
        l2.begin_iteration();
        ctx.read(t, i, 6);
        ctx.compute(6, 4);
        ctx.write(out, i, 6);
      }
    }
  });

  // Kernel C: consumer reads everything in its first iteration -> blocked.
  analyze_kernel("C: consumer needs the whole producer", [](trace::TraceContext& ctx) {
    const VarId t = ctx.var("t");
    const VarId out = ctx.var("out");
    trace::FunctionScope f(ctx, "kernel", 1);
    {
      trace::LoopScope l1(ctx, "produce", 2);
      for (std::uint64_t i = 0; i < 64; ++i) {
        l1.begin_iteration();
        ctx.compute(3, 4);
        ctx.write(t, i, 3);
      }
    }
    {
      trace::LoopScope l2(ctx, "reduce_all", 5);
      for (std::uint64_t i = 0; i < 64; ++i) {
        l2.begin_iteration();
        if (i == 0) {
          for (std::uint64_t k = 0; k < 64; ++k) ctx.read(t, k, 6);
        }
        ctx.compute(6, 4);
        ctx.write(out, i, 6);
      }
    }
  });

  return 0;
}
