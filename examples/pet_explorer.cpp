// Reproduces Figure 2: a Program Execution Tree with control regions and
// the CU graph mapped onto them, for a small synthetic program with nested
// loops, a called function, and a recursive helper.
//
// Build & run:  ./build/examples/pet_explorer
#include <cstdio>

#include "core/analyzer.hpp"
#include "cu/builder.hpp"
#include "trace/context.hpp"

using namespace ppd;

namespace {

void helper(trace::TraceContext& ctx, VarId depth_state, int depth) {
  trace::FunctionScope f(ctx, "recurse", 20);
  ctx.compute(21, 2);
  ctx.write(depth_state, static_cast<std::uint64_t>(depth), 21);
  if (depth < 3) helper(ctx, depth_state, depth + 1);
}

}  // namespace

int main() {
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);

  const VarId grid = ctx.var("grid");
  const VarId row_sum = ctx.var("row_sum");
  const VarId depth_state = ctx.var("depth_state");

  {
    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope fcompute(ctx, "compute_grid", 3);
      trace::LoopScope rows(ctx, "row_loop", 4);
      for (std::uint64_t i = 0; i < 8; ++i) {
        rows.begin_iteration();
        {
          trace::LoopScope cols(ctx, "col_loop", 5);
          for (std::uint64_t j = 0; j < 8; ++j) {
            cols.begin_iteration();
            ctx.compute(6, 3);
            ctx.write(grid, i * 8 + j, 6);
          }
        }
        ctx.read(grid, i * 8, 8);
        ctx.read(row_sum, i, 8);
        ctx.write(row_sum, i, 8);
      }
    }
    helper(ctx, depth_state, 0);
  }

  const core::AnalysisResult result = analyzer.analyze();

  std::puts("== Program Execution Tree (Fig. 2) ==\n");
  std::fputs(result.pet.render().c_str(), stdout);

  std::puts("\n== CU graph of compute_grid ==\n");
  const pet::NodeIndex node = result.pet.find(ctx.find_region("compute_grid"));
  const cu::CuGraph graph =
      cu::build_cu_graph(result.cus, result.profile, result.pet, node, ctx);
  std::fputs(graph.render().c_str(), stdout);

  std::puts("\n== Hotspots (>= 5% of executed cost) ==");
  for (pet::NodeIndex hotspot : result.pet.hotspots(0.05)) {
    const pet::PetNode& n = result.pet.node(hotspot);
    std::printf("%-14s %6.2f%%%s\n", n.name.c_str(),
                result.pet.cost_fraction(hotspot) * 100.0, n.recursive ? " [recursive]" : "");
  }
  return 0;
}
