// Multi-input profiling: §II of the paper — "we run the profiled
// application with different representative inputs whenever possible and
// merge the outputs of the profiled runs" — because a dynamic analysis only
// sees the dependences the given input exercises.
//
// The kernel below scatters updates through an index array. With a
// permutation input every iteration touches its own element (looks do-all);
// with a clashing input two iterations hit the same element (loop-carried).
// Profiling only the first input would wrongly suggest do-all; the merged
// profile is conservative.
//
// Build & run:  ./build/examples/multi_input
#include <cstdio>
#include <vector>

#include "core/analyzer.hpp"
#include "trace/context.hpp"

using namespace ppd;

namespace {

void run_scatter(trace::TraceContext& ctx, const std::vector<std::uint64_t>& index) {
  const VarId out = ctx.var("out");
  const VarId in = ctx.var("in");
  trace::FunctionScope f(ctx, "scatter_kernel", 1);
  trace::LoopScope loop(ctx, "scatter_loop", 2);
  for (std::size_t i = 0; i < index.size(); ++i) {
    loop.begin_iteration();
    ctx.read(in, i, 3);
    ctx.compute(3, 4);
    ctx.write(out, index[i], 4);
  }
}

const char* classify(trace::TraceContext& ctx, const core::AnalysisResult& result) {
  return core::to_string(
      core::classify_loop(result.profile, ctx.find_region("scatter_loop")));
}

}  // namespace

int main() {
  constexpr std::size_t n = 16;
  std::vector<std::uint64_t> permutation(n);
  for (std::size_t i = 0; i < n; ++i) permutation[i] = (i * 5) % n;  // bijective
  std::vector<std::uint64_t> clashing = permutation;
  clashing[7] = clashing[3];  // two iterations write the same element

  {
    trace::TraceContext ctx;
    core::PatternAnalyzer analyzer(ctx);
    run_scatter(ctx, permutation);
    const core::AnalysisResult result = analyzer.analyze();
    std::printf("profile of the permutation input only:   %s\n", classify(ctx, result));
  }
  {
    trace::TraceContext ctx;
    core::PatternAnalyzer analyzer(ctx);
    run_scatter(ctx, permutation);  // representative input 1
    run_scatter(ctx, clashing);     // representative input 2
    const core::AnalysisResult result = analyzer.analyze();
    std::printf("merged profile over both inputs:         %s\n", classify(ctx, result));
    const auto carried =
        result.profile.carried_in(ctx.find_region("scatter_loop"));
    std::printf("loop-carried dependences in the merge:   %zu\n", carried.size());
  }

  std::puts("\nThe single-input profile would suggest a do-all that input 2 disproves;");
  std::puts("merging representative inputs keeps the suggestion sound (paper, Section II).");
  return 0;
}
