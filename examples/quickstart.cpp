// Quickstart: instrument a small kernel, run the full analysis, and print
// what the library found. Reproduces Fig. 1's CU formation on the paper's
// 8-line snippet, then detects a reduction in a second kernel.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/analyzer.hpp"
#include "cu/builder.hpp"
#include "trace/context.hpp"

using namespace ppd;

int main() {
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);

  // --- Fig. 1: the read-compute-write snippet --------------------------------
  //  1: x = read_value();
  //  2: y = read_value();
  //  3: a = x * x;          (a, b are local temporaries)
  //  4: b = 2 * x;
  //  5: x = a + b;
  //  6: a = y + 1;
  //  7: b = y / 2;
  //  8: y = a - b;
  const VarId x = ctx.var("x");
  const VarId y = ctx.var("y");
  const VarId a = ctx.local_var("a");
  const VarId b = ctx.local_var("b");
  {
    trace::FunctionScope f(ctx, "figure1", 0);
    ctx.write(x, 0, 1);
    ctx.write(y, 0, 2);
    ctx.read(x, 0, 3);
    ctx.write(a, 0, 3);
    ctx.read(x, 0, 4);
    ctx.write(b, 0, 4);
    ctx.read(a, 0, 5);
    ctx.read(b, 0, 5);
    ctx.write(x, 0, 5);
    ctx.read(y, 0, 6);
    ctx.write(a, 1, 6);
    ctx.read(y, 0, 7);
    ctx.write(b, 1, 7);
    ctx.read(a, 1, 8);
    ctx.read(b, 1, 8);
    ctx.write(y, 0, 8);
  }

  // --- a reduction kernel -----------------------------------------------------
  const VarId sum = ctx.var("sum");
  const VarId arr = ctx.var("arr");
  {
    trace::FunctionScope f(ctx, "sum_kernel", 10);
    trace::LoopScope loop(ctx, "sum_loop", 11);
    for (std::uint64_t i = 0; i < 64; ++i) {
      loop.begin_iteration();
      ctx.read(arr, i, 12);
      ctx.read(sum, 0, 12);
      ctx.compute(12, 1);
      ctx.write(sum, 0, 12);
    }
  }

  core::AnalysisResult result = analyzer.analyze();

  std::puts("== Computational units (Fig. 1) ==");
  for (const cu::Cu& cu : result.cus) {
    if (ctx.region(cu.region).name != "figure1") continue;
    std::printf("%s: lines {", cu.name.c_str());
    bool first = true;
    for (SourceLine line : cu.lines) {
      std::printf("%s%u", first ? "" : ", ", line);
      first = false;
    }
    std::puts("}");
  }

  std::puts("\n== Detected reductions ==");
  for (const core::ReductionCandidate& r : result.reductions) {
    std::printf("loop '%s': variable '%s' reduced at line %u\n",
                ctx.region(r.loop).name.c_str(), ctx.var_info(r.var).name.c_str(), r.line);
  }

  std::printf("\nPrimary pattern: %s\n", result.primary_description.c_str());
  std::printf("Supporting structure: %s\n", core::supporting_structure(result.primary));
  return 0;
}
