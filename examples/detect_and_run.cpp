// Detect-and-run: the full circle the paper aims at (§I: easing the
// transformation of a sequential application into a parallel one).
//
//  1. Instrument and profile a sequential three-stage kernel.
//  2. Let the detector classify its CU graph (fork / workers / barrier).
//  3. Map each classified CU onto a real closure and hand the resulting
//     dependence graph to the runtime DAG executor — the master/worker
//     supporting structure of Table I, derived rather than hand-written.
//  4. Check the parallel result against the sequential one.
//
// Build & run:  ./build/examples/detect_and_run
#include <cstdio>
#include <map>
#include <vector>

#include "core/analyzer.hpp"
#include "rt/dag_executor.hpp"
#include "trace/context.hpp"

using namespace ppd;

namespace {

constexpr std::size_t kN = 256;

struct Data {
  std::vector<double> a = std::vector<double>(kN, 0.0);
  std::vector<double> b = std::vector<double>(kN, 0.0);
  std::vector<double> c = std::vector<double>(kN, 0.0);
};

// The sequential kernel: two independent producers and a combining stage.
void produce_a(Data& d) {
  for (std::size_t i = 0; i < kN; ++i) d.a[i] = static_cast<double>(i) * 0.5;
}
void produce_b(Data& d) {
  for (std::size_t i = 0; i < kN; ++i) d.b[i] = static_cast<double>(kN - i);
}
void combine(Data& d) {
  // Reads b reversed: a gather that rules out fusing with produce_b.
  for (std::size_t i = 0; i < kN; ++i) d.c[i] = d.a[i] * d.b[kN - 1 - i];
}

void run_traced(trace::TraceContext& ctx) {
  Data d;
  const VarId va = ctx.var("a");
  const VarId vb = ctx.var("b");
  const VarId vc = ctx.var("c");
  const VarId vargs = ctx.var("args");
  trace::FunctionScope f(ctx, "kernel", 1);
  {
    trace::StatementScope s(ctx, "entry", 1);
    ctx.write(vargs, 0, 1);
  }
  {
    trace::LoopScope l(ctx, "produce_a", 2);
    produce_a(d);
    for (std::size_t i = 0; i < kN; ++i) {
      l.begin_iteration();
      if (i == 0) ctx.read(vargs, 0, 3);
      ctx.compute(3, 2);
      ctx.write(va, i, 3);
    }
  }
  {
    trace::LoopScope l(ctx, "produce_b", 5);
    produce_b(d);
    for (std::size_t i = 0; i < kN; ++i) {
      l.begin_iteration();
      if (i == 0) ctx.read(vargs, 0, 6);
      ctx.compute(6, 2);
      ctx.write(vb, i, 6);
    }
  }
  {
    trace::LoopScope l(ctx, "combine", 8);
    combine(d);
    for (std::size_t i = 0; i < kN; ++i) {
      l.begin_iteration();
      ctx.read(va, i, 9);
      ctx.read(vb, kN - 1 - i, 9);
      ctx.compute(9, 1);
      ctx.write(vc, i, 9);
    }
  }
}

}  // namespace

int main() {
  // 1. + 2.: profile and classify.
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  run_traced(ctx);
  const core::AnalysisResult result = analyzer.analyze();

  const core::ScopeTaskParallelism* tasks = result.primary_tasks();
  if (tasks == nullptr) {
    std::puts("no task parallelism detected (unexpected)");
    return 1;
  }
  std::printf("detected: %s (estimated speedup %.2f)\n\n",
              result.primary_description.c_str(), tasks->tp.estimated_speedup);
  std::fputs(tasks->tp.render(tasks->graph).c_str(), stdout);

  // 3.: map the classified CUs onto closures and execute the CU graph.
  Data parallel_data;
  const std::map<std::string, std::function<void()>> work{
      {"entry", [] {}},
      {"produce_a", [&] { produce_a(parallel_data); }},
      {"produce_b", [&] { produce_b(parallel_data); }},
      {"combine", [&] { combine(parallel_data); }},
  };

  std::vector<rt::DagTask> dag(tasks->graph.size());
  for (std::size_t i = 0; i < tasks->graph.size(); ++i) {
    const auto& cu = tasks->graph.cu(static_cast<graph::NodeIndex>(i));
    auto it = work.find(cu.name);
    if (it == work.end()) {
      std::printf("no closure for CU '%s'\n", cu.name.c_str());
      return 1;
    }
    dag[i].work = it->second;
    // The detected dependence edges, verbatim: dependents wait for their
    // producers.
    for (graph::NodeIndex pred :
         tasks->graph.graph.predecessors(static_cast<graph::NodeIndex>(i))) {
      dag[i].deps.push_back(pred);
    }
  }

  rt::ThreadPool pool(4);
  rt::execute_dag(pool, std::move(dag));

  // 4.: compare against the sequential execution.
  Data sequential_data;
  produce_a(sequential_data);
  produce_b(sequential_data);
  combine(sequential_data);
  for (std::size_t i = 0; i < kN; ++i) {
    if (sequential_data.c[i] != parallel_data.c[i]) {
      std::puts("\nmismatch between sequential and executed task graph!");
      return 1;
    }
  }
  std::puts("\nexecuted the detected task graph on 4 threads: results match the");
  std::puts("sequential kernel. The master/worker structure came from detection,");
  std::puts("not from hand-written synchronization.");
  return 0;
}
